//! Sensor models: what the RTUs' field devices measure.
//!
//! Each information object address in the simulated network is bound to one
//! `SensorBinding` — a physical quantity on a model element. This is also
//! the ground truth the paper's Table 8 recovers by inspection (which
//! typeIDs carry current/power/voltage/frequency/status).

use crate::dynamics::{gaussian, PowerGrid};
use crate::model::GeneratorId;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The physical quantity a sensor reports (the paper's Table 8 legend:
/// I = current, P = active power, Q = reactive power, U = voltage,
/// Freq = frequency, Status, AGC-SP = AGC set point).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PhysicalQuantity {
    /// Line/stator current \[A\].
    Current,
    /// Active power \[MW\].
    ActivePower,
    /// Reactive power \[MVAr\].
    ReactivePower,
    /// Bus voltage \[kV\].
    Voltage,
    /// Grid-side (post step-up transformer) voltage \[kV\].
    GridVoltage,
    /// System frequency \[Hz\].
    Frequency,
    /// Breaker status (double point).
    BreakerStatus,
    /// AGC set point feedback \[MW\].
    AgcSetpoint,
}

impl PhysicalQuantity {
    /// The paper's Table 8 symbol.
    pub fn symbol(self) -> &'static str {
        match self {
            PhysicalQuantity::Current => "I",
            PhysicalQuantity::ActivePower => "P",
            PhysicalQuantity::ReactivePower => "Q",
            PhysicalQuantity::Voltage | PhysicalQuantity::GridVoltage => "U",
            PhysicalQuantity::Frequency => "Freq",
            PhysicalQuantity::BreakerStatus => "Status",
            PhysicalQuantity::AgcSetpoint => "AGC-SP",
        }
    }
}

/// A sensor bound to a grid element.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SensorBinding {
    /// Which generator (bus) the sensor observes; `None` = system-wide
    /// (frequency sensors).
    pub generator: Option<GeneratorId>,
    /// The measured quantity.
    pub quantity: PhysicalQuantity,
    /// Multiplicative measurement noise (standard deviation, relative).
    pub noise_rel: f64,
}

impl SensorBinding {
    /// A sensor on a generator bus.
    pub fn on_generator(generator: GeneratorId, quantity: PhysicalQuantity) -> SensorBinding {
        SensorBinding {
            generator: Some(generator),
            quantity,
            noise_rel: 0.002,
        }
    }

    /// A system frequency sensor.
    pub fn frequency() -> SensorBinding {
        SensorBinding {
            generator: None,
            quantity: PhysicalQuantity::Frequency,
            noise_rel: 0.00002,
        }
    }

    /// Sample the current value from the grid with measurement noise.
    pub fn read<R: Rng + ?Sized>(&self, grid: &PowerGrid, rng: &mut R) -> SensorReading {
        let truth = self.truth(grid);
        let value = match self.quantity {
            // Discrete statuses are never noisy.
            PhysicalQuantity::BreakerStatus => truth,
            _ => truth + gaussian(rng, 0.0, self.noise_rel * truth.abs().max(1.0)),
        };
        SensorReading {
            quantity: self.quantity,
            value,
        }
    }

    /// Noise-free ground truth.
    pub fn truth(&self, grid: &PowerGrid) -> f64 {
        match (self.quantity, self.generator) {
            (PhysicalQuantity::Frequency, _) => grid.frequency_hz,
            (q, Some(id)) => {
                let Some(g) = grid.model.generators.get(id.0) else {
                    return 0.0;
                };
                match q {
                    PhysicalQuantity::ActivePower => g.output_mw,
                    PhysicalQuantity::ReactivePower => g.reactive_mvar,
                    PhysicalQuantity::Voltage => g.bus_kv,
                    PhysicalQuantity::GridVoltage => g.grid_kv,
                    PhysicalQuantity::BreakerStatus => g.breaker.code() as f64,
                    PhysicalQuantity::AgcSetpoint => g.setpoint_mw,
                    // I = S / (√3·U), in amps, when energised.
                    PhysicalQuantity::Current => {
                        if g.bus_kv > 1.0 {
                            let s_mva = (g.output_mw.powi(2) + g.reactive_mvar.powi(2)).sqrt();
                            s_mva * 1000.0 / (3f64.sqrt() * g.bus_kv)
                        } else {
                            0.0
                        }
                    }
                    PhysicalQuantity::Frequency => grid.frequency_hz,
                }
            }
            (_, None) => 0.0,
        }
    }
}

/// A timestamped-by-caller sensor sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SensorReading {
    /// What was measured.
    pub quantity: PhysicalQuantity,
    /// The measured value in the quantity's engineering unit.
    pub value: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::GridModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn symbols_match_table8_legend() {
        assert_eq!(PhysicalQuantity::Current.symbol(), "I");
        assert_eq!(PhysicalQuantity::ActivePower.symbol(), "P");
        assert_eq!(PhysicalQuantity::ReactivePower.symbol(), "Q");
        assert_eq!(PhysicalQuantity::Voltage.symbol(), "U");
        assert_eq!(PhysicalQuantity::Frequency.symbol(), "Freq");
        assert_eq!(PhysicalQuantity::BreakerStatus.symbol(), "Status");
        assert_eq!(PhysicalQuantity::AgcSetpoint.symbol(), "AGC-SP");
    }

    #[test]
    fn truth_reads_grid_state() {
        let grid = PowerGrid::new(GridModel::bulk_example());
        let p = SensorBinding::on_generator(GeneratorId(0), PhysicalQuantity::ActivePower);
        assert_eq!(p.truth(&grid), 520.0);
        let u = SensorBinding::on_generator(GeneratorId(0), PhysicalQuantity::Voltage);
        assert_eq!(u.truth(&grid), 130.0);
        let f = SensorBinding::frequency();
        assert_eq!(f.truth(&grid), 60.0);
        let s = SensorBinding::on_generator(GeneratorId(4), PhysicalQuantity::BreakerStatus);
        assert_eq!(s.truth(&grid), 1.0, "open breaker");
    }

    #[test]
    fn current_follows_apparent_power() {
        let grid = PowerGrid::new(GridModel::bulk_example());
        let i = SensorBinding::on_generator(GeneratorId(0), PhysicalQuantity::Current);
        let g = &grid.model.generators[0];
        let s = (g.output_mw.powi(2) + g.reactive_mvar.powi(2)).sqrt();
        let expect = s * 1000.0 / (3f64.sqrt() * g.bus_kv);
        assert!((i.truth(&grid) - expect).abs() < 1e-9);
        // Offline unit: no current.
        let i_off = SensorBinding::on_generator(GeneratorId(4), PhysicalQuantity::Current);
        assert_eq!(i_off.truth(&grid), 0.0);
    }

    #[test]
    fn readings_are_noisy_but_unbiased() {
        let grid = PowerGrid::new(GridModel::bulk_example());
        let mut rng = StdRng::seed_from_u64(3);
        let p = SensorBinding::on_generator(GeneratorId(0), PhysicalQuantity::ActivePower);
        let n = 5000;
        let mean: f64 = (0..n).map(|_| p.read(&grid, &mut rng).value).sum::<f64>() / n as f64;
        assert!((mean - 520.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn status_reads_are_exact() {
        let grid = PowerGrid::new(GridModel::bulk_example());
        let mut rng = StdRng::seed_from_u64(3);
        let s = SensorBinding::on_generator(GeneratorId(0), PhysicalQuantity::BreakerStatus);
        for _ in 0..100 {
            assert_eq!(s.read(&grid, &mut rng).value, 2.0);
        }
    }

    #[test]
    fn missing_generator_reads_zero() {
        let grid = PowerGrid::new(GridModel::bulk_example());
        let p = SensorBinding::on_generator(GeneratorId(99), PhysicalQuantity::ActivePower);
        assert_eq!(p.truth(&grid), 0.0);
    }
}
