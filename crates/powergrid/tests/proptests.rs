//! Property-based tests for the grid substrate: physical invariants under
//! random event sequences and AGC command streams.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use uncharted_powergrid::agc::AgcController;
use uncharted_powergrid::dynamics::PowerGrid;
use uncharted_powergrid::model::{BreakerState, GeneratorId, GridModel, LoadId};

/// A random operator/world action.
#[derive(Debug, Clone, Copy)]
enum Op {
    Step(u8),
    Setpoint(u8, f64),
    OpenBreaker(u8),
    CloseBreaker(u8, f64),
    BeginSync(u8),
    LoadLoss(u8),
    LoadRestore(u8),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u8..30).prop_map(Op::Step),
        (any::<u8>(), -500.0f64..5000.0).prop_map(|(g, mw)| Op::Setpoint(g, mw)),
        any::<u8>().prop_map(Op::OpenBreaker),
        (any::<u8>(), 0.0f64..2000.0).prop_map(|(g, mw)| Op::CloseBreaker(g, mw)),
        any::<u8>().prop_map(Op::BeginSync),
        any::<u8>().prop_map(Op::LoadLoss),
        any::<u8>().prop_map(Op::LoadRestore),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever the operator does, physical state stays sane: outputs within
    /// [0, capacity], voltages within [0, ~nominal], frequency finite, no
    /// NaNs anywhere.
    #[test]
    fn physical_invariants_under_random_operation(
        seed in any::<u64>(),
        ops in prop::collection::vec(arb_op(), 1..60),
    ) {
        let mut grid = PowerGrid::new(GridModel::bulk_example());
        let mut rng = StdRng::seed_from_u64(seed);
        let n_gens = grid.model.generators.len();
        let n_loads = grid.model.loads.len();
        for op in ops {
            match op {
                Op::Step(n) => {
                    for _ in 0..n {
                        grid.step(1.0, &mut rng);
                    }
                }
                Op::Setpoint(g, mw) => grid.apply_setpoint(GeneratorId(g as usize % n_gens), mw),
                Op::OpenBreaker(g) => grid.open_breaker(GeneratorId(g as usize % n_gens)),
                Op::CloseBreaker(g, mw) => {
                    grid.close_breaker(GeneratorId(g as usize % n_gens), mw)
                }
                Op::BeginSync(g) => grid.begin_sync(GeneratorId(g as usize % n_gens)),
                Op::LoadLoss(l) => grid.disconnect_load(LoadId(l as usize % n_loads)),
                Op::LoadRestore(l) => grid.reconnect_load(LoadId(l as usize % n_loads)),
            }
            prop_assert!(grid.frequency_hz.is_finite());
            for g in &grid.model.generators {
                prop_assert!(g.output_mw.is_finite());
                prop_assert!((0.0..=g.capacity_mw + 1e-9).contains(&g.output_mw),
                    "output {} within [0, {}]", g.output_mw, g.capacity_mw);
                prop_assert!((0.0..=g.capacity_mw + 1e-9).contains(&g.setpoint_mw));
                prop_assert!(g.bus_kv.is_finite() && g.bus_kv >= 0.0);
                prop_assert!(g.bus_kv < g.nominal_kv * 1.2);
                if g.breaker != BreakerState::Closed {
                    prop_assert_eq!(g.output_mw, 0.0, "no power through an open breaker");
                }
            }
        }
    }

    /// AGC dispatches always respect capacity limits and fire on the
    /// configured cycle.
    #[test]
    fn agc_commands_bounded(seed in any::<u64>(), dev in -0.4f64..0.4, cycles in 1usize..12) {
        let mut grid = PowerGrid::new(GridModel::bulk_example());
        let mut agc = AgcController::with_cycle(4.0);
        let mut rng = StdRng::seed_from_u64(seed);
        grid.frequency_hz += dev;
        let mut dispatches = 0;
        for i in 0..cycles * 4 {
            grid.step(1.0, &mut rng);
            let cmds = agc.dispatch(&grid, i as f64);
            if !cmds.is_empty() {
                dispatches += 1;
            }
            for cmd in cmds {
                let cap = grid.model.generators[cmd.generator.0].capacity_mw;
                prop_assert!((0.0..=cap).contains(&cmd.setpoint_mw));
                grid.apply_setpoint(cmd.generator, cmd.setpoint_mw);
            }
        }
        // At 4 s cycle over `cycles*4` seconds we get ~`cycles` dispatches.
        prop_assert!(dispatches >= cycles.saturating_sub(1));
        prop_assert!(dispatches <= cycles + 1);
    }

    /// Determinism: identical seeds and op sequences give identical state.
    #[test]
    fn deterministic_under_seeded_randomness(seed in any::<u64>(), steps in 1usize..100) {
        let run = |seed: u64| {
            let mut grid = PowerGrid::new(GridModel::bulk_example());
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..steps {
                grid.step(1.0, &mut rng);
            }
            (grid.frequency_hz, grid.model.total_generation(), grid.tie_actual_mw)
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    /// The synchronisation ramp is monotone and capped at nominal.
    #[test]
    fn sync_ramp_monotone(seed in any::<u64>(), steps in 1usize..120) {
        let mut grid = PowerGrid::new(GridModel::bulk_example());
        let mut rng = StdRng::seed_from_u64(seed);
        let id = GeneratorId(4); // the offline unit
        grid.begin_sync(id);
        let mut prev = 0.0;
        for _ in 0..steps {
            grid.step(1.0, &mut rng);
            let v = grid.model.generators[4].bus_kv;
            // Monotone during the ramp; once at nominal the bus holds with
            // sensor-scale noise, so allow a small jitter band.
            prop_assert!(v + 1.0 >= prev, "ramp never falls: {prev} -> {v}");
            prop_assert!(v <= grid.model.generators[4].nominal_kv * 1.02);
            prev = v;
        }
    }
}
