//! Prints a quick census of a small simulated capture: packet counts,
//! flow lifetimes and the APDU token distribution (a miniature Table 7).
use std::collections::BTreeMap;
use uncharted_iec104::apdu::{StreamDecoder, StreamItem};
use uncharted_iec104::dialect::Dialect;
use uncharted_nettap::flow::FlowTable;
use uncharted_scadasim::scenario::{Scenario, Year};
use uncharted_scadasim::sim::Simulation;

fn main() {
    let mut sc = Scenario::small(Year::Y1, 42, 180.0);
    sc.warmup_s = 0.0;
    sc.windows[0].start = 0.0;
    let set = Simulation::new(sc).run();
    let cap = &set.captures[0];
    println!("packets: {}", cap.len());
    let table = FlowTable::from_capture(cap);
    println!("connections: {}", table.len());
    let short: Vec<_> = table.short_lived().collect();
    let sub1 = short.iter().filter(|c| c.duration() < 1.0).count();
    println!(
        "short-lived: {} (<1s: {}), long-lived: {}",
        short.len(),
        sub1,
        table.long_lived().count()
    );

    // Token census per connection direction.
    let mut type_counts: BTreeMap<String, usize> = BTreeMap::new();
    let mut malformed = 0usize;
    for conn in &table.connections {
        for dir in [
            uncharted_nettap::flow::Direction::AtoB,
            uncharted_nettap::flow::Direction::BtoA,
        ] {
            let stream = &conn.dir(dir).stream;
            if stream.is_empty() {
                continue;
            }
            let mut dec = StreamDecoder::new(Dialect::STANDARD);
            for item in dec.feed(stream) {
                match item {
                    StreamItem::Apdu(a) => {
                        *type_counts.entry(a.token()).or_default() += 1;
                    }
                    StreamItem::Malformed(_, _) => malformed += 1,
                }
            }
        }
    }
    println!("malformed frames (strict): {malformed}");
    let total: usize = type_counts.values().sum();
    for (tok, n) in &type_counts {
        println!(
            "  {tok:>5}: {n:>7}  {:.3}%",
            100.0 * *n as f64 / total as f64
        );
    }
}
