//! An Industroyer-style attacker (paper §6.3.1 and conclusions).
//!
//! The 2016 Ukraine malware targeted IEC 104: once it could reach an
//! outstation's TCP port it established a connection, discovered the
//! process image (the paper notes a single `I100` interrogation does this
//! in one step), and issued breaker and set-point commands. This module
//! reproduces that behaviour so the whitelist IDS built from the paper's
//! future-work section has something real to catch:
//!
//! 1. connect to each target outstation from a host the network has never
//!    seen,
//! 2. STARTDT + general interrogation (reconnaissance),
//! 3. single commands (`C_SC_NA_1`) against the breaker point, and
//! 4. an absurd AGC set point (`C_SE_NC_1`).

use crate::endpoint::Iec104Link;
use crate::topology::IEC104_PORT;
use serde::{Deserialize, Serialize};
use uncharted_iec104::asdu::{Asdu, InfoObject, IoValue};
use uncharted_iec104::conn::{ConnConfig, DtState, Role};
use uncharted_iec104::cot::{Cause, Cot};
use uncharted_iec104::dialect::Dialect;
use uncharted_iec104::elements::Qoi;
use uncharted_iec104::types::TypeId;
use uncharted_nettap::stack::{Segment, SocketAddr, TcpEndpoint};

/// Attack campaign description (part of a [`crate::scenario::Scenario`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttackSpec {
    /// When the attacker starts dialling [s of simulation time].
    pub start: f64,
    /// How many outstations it goes after (the first N accepting data
    /// connections).
    pub targets: usize,
    /// Seconds between escalation steps per target.
    pub step_s: f64,
}

impl AttackSpec {
    /// A campaign hitting `targets` outstations `at` seconds in.
    pub fn new(at: f64, targets: usize) -> AttackSpec {
        AttackSpec {
            start: at,
            targets,
            step_s: 2.0,
        }
    }

    /// The attacker's source address — a host the network has never seen.
    pub fn attacker_ip() -> u32 {
        uncharted_nettap::ipv4::addr(10, 66, 6, 6)
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    Dial,
    AwaitStart,
    Interrogate,
    BreakerCommand,
    Setpoint,
    Done,
}

#[derive(Debug)]
struct TargetState {
    remote_ip: u32,
    link: Option<Iec104Link>,
    phase: Phase,
    next_step: f64,
}

/// The attacker endpoint.
#[derive(Debug)]
pub struct AttackerSim {
    spec: AttackSpec,
    ip: u32,
    next_port: u16,
    isn: u32,
    targets: Vec<TargetState>,
}

impl AttackerSim {
    /// Build a campaign against the given outstation IPs.
    pub fn new(spec: AttackSpec, target_ips: &[u32]) -> AttackerSim {
        AttackerSim {
            spec,
            ip: AttackSpec::attacker_ip(),
            next_port: 50_000,
            isn: 0xBAD5EED,
            targets: target_ips
                .iter()
                .take(spec.targets)
                .map(|&remote_ip| TargetState {
                    remote_ip,
                    link: None,
                    phase: Phase::Dial,
                    next_step: spec.start,
                })
                .collect(),
        }
    }

    /// The attacker's IP (for routing).
    pub fn ip(&self) -> u32 {
        self.ip
    }

    /// True once every target has been worked through.
    pub fn finished(&self) -> bool {
        self.targets.iter().all(|t| t.phase == Phase::Done)
    }

    fn alloc(&mut self) -> (u16, u32) {
        self.next_port += 1;
        self.isn = self.isn.wrapping_mul(0x9E37_79B9).wrapping_add(1);
        (self.next_port, self.isn)
    }

    /// Drive the campaign.
    pub fn poll(&mut self, now: f64) -> Vec<Segment> {
        let mut out = Vec::new();
        for i in 0..self.targets.len() {
            if self.targets[i].next_step > now {
                continue;
            }
            let (port, isn) = self.alloc();
            let t = &mut self.targets[i];
            match t.phase {
                Phase::Dial => {
                    let local = SocketAddr::new(self.ip, port);
                    let remote = SocketAddr::new(t.remote_ip, IEC104_PORT);
                    let (tcp, syn) = TcpEndpoint::connect(local, remote, isn);
                    t.link = Some(Iec104Link::new(
                        tcp,
                        Role::Controlling,
                        ConnConfig::default(),
                        Dialect::STANDARD,
                        now,
                    ));
                    out.push(syn);
                    t.phase = Phase::AwaitStart;
                    t.next_step = now + self.spec.step_s;
                }
                Phase::AwaitStart => {
                    if let Some(link) = t.link.as_mut() {
                        if link.established() && link.iec.dt_state() == DtState::Stopped {
                            out.extend(link.start_dt(now));
                        }
                        if link.iec.dt_state() == DtState::Started {
                            t.phase = Phase::Interrogate;
                        }
                    }
                    t.next_step = now + 0.2;
                }
                Phase::Interrogate => {
                    if let Some(link) = t.link.as_mut() {
                        // The single-I100 reconnaissance the paper highlights.
                        let asdu = Asdu::new(TypeId::C_IC_NA_1, Cot::new(Cause::Activation), 0)
                            .with_object(InfoObject::new(
                                0,
                                IoValue::Interrogation { qoi: Qoi::STATION },
                            ));
                        out.extend(link.send_asdu(asdu, now));
                    }
                    t.phase = Phase::BreakerCommand;
                    t.next_step = now + self.spec.step_s;
                }
                Phase::BreakerCommand => {
                    if let Some(link) = t.link.as_mut() {
                        // "Open the breaker" — the Industroyer payload.
                        let asdu = Asdu::new(TypeId::C_SC_NA_1, Cot::new(Cause::Activation), 0)
                            .with_object(InfoObject::new(800, IoValue::SingleCommand { sco: 0 }));
                        out.extend(link.send_asdu(asdu, now));
                    }
                    t.phase = Phase::Setpoint;
                    t.next_step = now + self.spec.step_s;
                }
                Phase::Setpoint => {
                    if let Some(link) = t.link.as_mut() {
                        // An absurd set point, far outside any unit's range.
                        let asdu = Asdu::new(TypeId::C_SE_NC_1, Cot::new(Cause::Activation), 0)
                            .with_object(InfoObject::new(
                                900,
                                IoValue::FloatSetpoint {
                                    value: 99_999.0,
                                    qos: 0,
                                },
                            ));
                        out.extend(link.send_asdu(asdu, now));
                    }
                    t.phase = Phase::Done;
                }
                Phase::Done => {}
            }
        }
        // Keep the protocol machinery alive.
        for t in &mut self.targets {
            if let Some(link) = t.link.as_mut() {
                out.extend(link.poll(now));
            }
        }
        out
    }

    /// Handle a segment addressed to one of the attacker's ports.
    pub fn on_segment(&mut self, seg: &Segment, now: f64) -> Vec<Segment> {
        let mut out = Vec::new();
        for t in &mut self.targets {
            if let Some(link) = t.link.as_mut() {
                if link.tcp.local().port == seg.dst.port {
                    let (replies, _delivered) = link.on_segment(seg, 0xFEED, now);
                    out.extend(replies);
                    break;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attacker_ip_is_outside_known_subnets() {
        let ip = AttackSpec::attacker_ip();
        let b = ip.to_be_bytes();
        assert_eq!(b[0], 10);
        assert_ne!(b[1], 0, "not the control-centre subnet");
        assert_ne!(b[1], 1, "not the substation subnet");
    }

    #[test]
    fn campaign_limits_targets() {
        let spec = AttackSpec::new(100.0, 2);
        let attacker = AttackerSim::new(spec, &[1, 2, 3, 4]);
        assert_eq!(attacker.targets.len(), 2);
        assert!(!attacker.finished());
    }

    #[test]
    fn dial_starts_at_spec_time() {
        let spec = AttackSpec::new(100.0, 1);
        let mut attacker = AttackerSim::new(spec, &[uncharted_nettap::ipv4::addr(10, 1, 3, 3)]);
        assert!(attacker.poll(50.0).is_empty(), "nothing before start");
        let out = attacker.poll(100.5);
        assert_eq!(out.len(), 1);
        assert!(out[0].flags.syn());
        assert_eq!(out[0].src.ip, AttackSpec::attacker_ip());
    }
}
