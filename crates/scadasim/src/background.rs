//! Background industrial traffic.
//!
//! The paper's tap did not only see IEC 104: "our capture included other
//! industrial protocols over TCP/IP such as ICCP (communications between
//! SCADA servers of different companies) and C37.118 (phasor measurement
//! units reporting data to the SCADA server). We leave the analysis of
//! these other protocols for future studies." (§5)
//!
//! This module synthesises that co-tenant traffic so the measurement
//! pipeline has something realistic to *correctly ignore*: ICCP-style
//! TPKT/COTP exchanges between the control centre and peer-company SCADA
//! servers (TCP 102), and C37.118 data frames streaming from PMUs (TCP
//! 4712). The flows are long-lived (established before the capture starts)
//! and purely tap-level: nothing in the simulation consumes them.

use uncharted_nettap::ethernet::MacAddr;
use uncharted_nettap::pcap::CapturedPacket;
use uncharted_nettap::tcp::{TcpFlags, TcpHeader};

/// ISO transport over TCP (ICCP rides on this).
pub const TPKT_PORT: u16 = 102;
/// IEEE C37.118 synchrophasor data port.
pub const C37_PORT: u16 = 4712;

/// CRC-CCITT (0xFFFF seed) as used by IEEE C37.118 frames.
pub fn crc_ccitt(data: &[u8]) -> u16 {
    let mut crc: u16 = 0xFFFF;
    for &byte in data {
        crc ^= (byte as u16) << 8;
        for _ in 0..8 {
            if crc & 0x8000 != 0 {
                crc = (crc << 1) ^ 0x1021;
            } else {
                crc <<= 1;
            }
        }
    }
    crc
}

/// Build one C37.118 data frame for `idcode` at time `soc.fracsec`.
pub fn c37_data_frame(idcode: u16, soc: u32, fracsec: u32, phasors: &[(i16, i16)]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(16 + phasors.len() * 4 + 2);
    frame.extend_from_slice(&[0xAA, 0x01]); // SYNC: data frame, version 1
    frame.extend_from_slice(&[0, 0]); // FRAMESIZE placeholder
    frame.extend_from_slice(&idcode.to_be_bytes());
    frame.extend_from_slice(&soc.to_be_bytes());
    frame.extend_from_slice(&(fracsec & 0x00FF_FFFF).to_be_bytes());
    frame.extend_from_slice(&[0, 0]); // STAT
    for &(re, im) in phasors {
        frame.extend_from_slice(&re.to_be_bytes());
        frame.extend_from_slice(&im.to_be_bytes());
    }
    let total = frame.len() + 2;
    frame[2..4].copy_from_slice(&(total as u16).to_be_bytes());
    let chk = crc_ccitt(&frame);
    frame.extend_from_slice(&chk.to_be_bytes());
    frame
}

/// Build one TPKT-framed blob (the ISO transport ICCP/MMS rides on).
pub fn tpkt_frame(payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.push(0x03); // TPKT version
    frame.push(0x00);
    frame.extend_from_slice(&((payload.len() + 4) as u16).to_be_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// One synthetic long-lived background flow.
#[derive(Debug)]
struct Flow {
    client_ip: u32,
    client_port: u16,
    server_ip: u32,
    server_port: u16,
    /// True when the *server* streams (PMU style); false for request/reply.
    server_streams: bool,
    seq_client: u32,
    seq_server: u32,
    period_s: f64,
    next_at: f64,
    idcode: u16,
}

/// The background traffic generator.
#[derive(Debug, Default)]
pub struct BackgroundTraffic {
    flows: Vec<Flow>,
    ident: u16,
}

impl BackgroundTraffic {
    /// The paper-shaped mix: `iccp_peers` peer-company SCADA links into the
    /// control centre and `pmus` synchrophasor streams.
    pub fn paper_mix(control_centre_ip: u32, iccp_peers: usize, pmus: usize) -> BackgroundTraffic {
        let mut flows = Vec::new();
        for k in 0..iccp_peers {
            flows.push(Flow {
                client_ip: uncharted_nettap::ipv4::addr(10, 2, 0, 10 + k as u8),
                client_port: 38_000 + k as u16,
                server_ip: control_centre_ip,
                server_port: TPKT_PORT,
                server_streams: false,
                seq_client: 52_000 + k as u32 * 97,
                seq_server: 91_000 + k as u32 * 131,
                period_s: 2.0 + (k as f64) * 0.7,
                next_at: 0.0,
                idcode: 0,
            });
        }
        for k in 0..pmus {
            flows.push(Flow {
                client_ip: uncharted_nettap::ipv4::addr(10, 3, 1, 20 + k as u8),
                client_port: 47_000 + k as u16,
                server_ip: control_centre_ip,
                server_port: C37_PORT,
                // PMUs stream *to* the server: data flows client -> server
                // continuously (a "stream" in the client direction).
                server_streams: false,
                seq_client: 7_000 + k as u32 * 53,
                seq_server: 3_000 + k as u32 * 71,
                period_s: 0.2, // 5 frames/s (scaled down from 30-60 fps)
                next_at: 0.0,
                idcode: 100 + k as u16,
            });
        }
        BackgroundTraffic { flows, ident: 0 }
    }

    /// Emit the packets due by `now`, ready for the tap.
    pub fn emit(&mut self, now: f64) -> Vec<CapturedPacket> {
        let mut out = Vec::new();
        for f in &mut self.flows {
            while f.next_at <= now {
                let t = f.next_at;
                f.next_at += f.period_s;
                let payload = if f.server_port == C37_PORT {
                    let soc = t as u32;
                    let fracsec = ((t.fract()) * 1_000_000.0) as u32;
                    c37_data_frame(f.idcode, soc, fracsec, &[(1200, -340), (1180, -355)])
                } else {
                    // An opaque MMS-ish information report inside TPKT.
                    tpkt_frame(&[0x02, 0xF0, 0x80, 0x01, 0x00, 0xA1, 0x09, 0xA0, 0x07])
                };
                // Data segment client -> server.
                self.ident = self.ident.wrapping_add(1);
                out.push(CapturedPacket::build(
                    t,
                    MacAddr::from_device_id(f.client_ip),
                    MacAddr::from_device_id(f.server_ip),
                    f.client_ip,
                    f.server_ip,
                    TcpHeader {
                        src_port: f.client_port,
                        dst_port: f.server_port,
                        seq: f.seq_client,
                        ack: f.seq_server,
                        flags: TcpFlags::ACK.with(TcpFlags::PSH),
                        window: 8192,
                    },
                    &payload,
                    self.ident,
                ));
                f.seq_client = f.seq_client.wrapping_add(payload.len() as u32);
                // Acknowledgement (with a small reply for request/reply
                // protocols) server -> client.
                let reply: Vec<u8> = if f.server_streams || f.server_port == C37_PORT {
                    Vec::new()
                } else {
                    tpkt_frame(&[0x02, 0xF0, 0x80, 0x01, 0x01])
                };
                self.ident = self.ident.wrapping_add(1);
                out.push(CapturedPacket::build(
                    t + 0.004,
                    MacAddr::from_device_id(f.server_ip),
                    MacAddr::from_device_id(f.client_ip),
                    f.server_ip,
                    f.client_ip,
                    TcpHeader {
                        src_port: f.server_port,
                        dst_port: f.client_port,
                        seq: f.seq_server,
                        ack: f.seq_client,
                        flags: TcpFlags::ACK.with(if reply.is_empty() {
                            TcpFlags(0)
                        } else {
                            TcpFlags::PSH
                        }),
                        window: 8192,
                    },
                    &reply,
                    self.ident,
                ));
                f.seq_server = f.seq_server.wrapping_add(reply.len() as u32);
            }
        }
        out
    }

    /// Number of configured flows.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc_ccitt_known_vector() {
        // CRC-CCITT(0xFFFF) of "123456789" is 0x29B1.
        assert_eq!(crc_ccitt(b"123456789"), 0x29B1);
    }

    #[test]
    fn c37_frame_shape() {
        let frame = c37_data_frame(101, 1_600_000_000, 123, &[(1, 2), (3, 4)]);
        assert_eq!(frame[0], 0xAA);
        assert_eq!(frame[1], 0x01);
        let size = u16::from_be_bytes([frame[2], frame[3]]) as usize;
        assert_eq!(size, frame.len());
        // Checksum covers everything but itself.
        let chk = u16::from_be_bytes([frame[size - 2], frame[size - 1]]);
        assert_eq!(chk, crc_ccitt(&frame[..size - 2]));
    }

    #[test]
    fn tpkt_frame_shape() {
        let f = tpkt_frame(&[1, 2, 3]);
        assert_eq!(f[0], 0x03);
        assert_eq!(u16::from_be_bytes([f[2], f[3]]) as usize, f.len());
    }

    #[test]
    fn emits_parseable_tcp_in_both_directions() {
        let cc = uncharted_nettap::ipv4::addr(10, 0, 0, 1);
        let mut bg = BackgroundTraffic::paper_mix(cc, 2, 1);
        assert_eq!(bg.flow_count(), 3);
        let packets = bg.emit(1.0);
        assert!(packets.len() >= 6);
        for p in &packets {
            let parsed = p.parse().expect("valid TCP frame");
            assert!(
                parsed.tcp.dst_port == TPKT_PORT
                    || parsed.tcp.src_port == TPKT_PORT
                    || parsed.tcp.dst_port == C37_PORT
                    || parsed.tcp.src_port == C37_PORT
            );
            assert_ne!(parsed.tcp.dst_port, 2404, "never IEC 104");
        }
    }

    #[test]
    fn stream_sequences_are_continuous() {
        let cc = uncharted_nettap::ipv4::addr(10, 0, 0, 1);
        let mut bg = BackgroundTraffic::paper_mix(cc, 0, 1);
        let a = bg.emit(0.3); // two frames (t=0.0, 0.2)
        let b = bg.emit(0.5); // one more (t=0.4)
        let data_a: Vec<_> = a
            .iter()
            .map(|p| p.parse().unwrap())
            .filter(|p| !p.payload.is_empty())
            .collect();
        let data_b: Vec<_> = b
            .iter()
            .map(|p| p.parse().unwrap())
            .filter(|p| !p.payload.is_empty())
            .collect();
        let last = &data_a[data_a.len() - 1];
        let next = &data_b[0];
        assert_eq!(
            last.tcp.seq.wrapping_add(last.payload.len() as u32),
            next.tcp.seq,
            "byte stream is gapless"
        );
    }
}
