//! Glue between a TCP endpoint and an IEC 104 connection state machine:
//! one `Iec104Link` per live TCP connection, on either side.

use uncharted_iec104::apdu::{StreamDecoder, StreamItem};
use uncharted_iec104::asdu::Asdu;
use uncharted_iec104::conn::{Action, ConnConfig, Connection, Role};
use uncharted_iec104::dialect::Dialect;
use uncharted_nettap::stack::{Segment, TcpEndpoint, TcpState};

/// Why a link wants to die.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkFate {
    /// Keep going.
    Alive,
    /// The IEC 104 layer requested an orderly close (T1 expiry etc.).
    CloseRequested,
    /// The TCP layer is already closed (peer FIN/RST completed).
    TcpClosed,
}

/// A TCP connection carrying IEC 104.
#[derive(Debug)]
pub struct Iec104Link {
    /// The TCP endpoint.
    pub tcp: TcpEndpoint,
    /// The IEC 104 connection state machine.
    pub iec: Connection,
    /// Stream decoder configured for the peer's dialect.
    pub decoder: StreamDecoder,
    /// Dialect used to encode our own APDUs.
    pub dialect: Dialect,
    close_pending: bool,
}

impl Iec104Link {
    /// Wrap an established-or-connecting TCP endpoint.
    pub fn new(tcp: TcpEndpoint, role: Role, cfg: ConnConfig, dialect: Dialect, now: f64) -> Self {
        Iec104Link {
            tcp,
            iec: Connection::new(role, cfg, now),
            decoder: StreamDecoder::new(dialect),
            dialect,
            close_pending: false,
        }
    }

    /// Whether application traffic can flow.
    pub fn established(&self) -> bool {
        self.tcp.is_established()
    }

    /// The link's fate after the last operation.
    pub fn fate(&self) -> LinkFate {
        if self.tcp.is_closed() {
            LinkFate::TcpClosed
        } else if self.close_pending {
            LinkFate::CloseRequested
        } else {
            LinkFate::Alive
        }
    }

    fn run_actions(
        &mut self,
        actions: Vec<Action>,
        out: &mut Vec<Segment>,
        delivered: &mut Vec<Asdu>,
    ) {
        for action in actions {
            match action {
                Action::Transmit(apdu) => {
                    if let Ok(bytes) = apdu.encode(self.dialect) {
                        if let Some(seg) = self.tcp.send(bytes) {
                            out.push(seg);
                        }
                    }
                }
                Action::Deliver(asdu) => delivered.push(asdu),
                Action::Close(_) => {
                    self.close_pending = true;
                    if let Some(fin) = self.tcp.close() {
                        out.push(fin);
                    }
                }
            }
        }
    }

    /// Handle an incoming TCP segment. Returns segments to transmit and
    /// ASDUs delivered to the application.
    pub fn on_segment(&mut self, seg: &Segment, isn: u32, now: f64) -> (Vec<Segment>, Vec<Asdu>) {
        let mut out = Vec::new();
        let mut delivered = Vec::new();
        let (replies, payload) = self.tcp.on_segment(seg, isn);
        out.extend(replies);
        if !payload.is_empty() {
            let items = self.decoder.feed(&payload);
            for item in items {
                if let StreamItem::Apdu(apdu) = item {
                    let actions = self.iec.on_apdu(&apdu, now);
                    self.run_actions(actions, &mut out, &mut delivered);
                }
                // Malformed frames are silently skipped here: the *tap*
                // records the raw bytes, and compliance is judged offline.
            }
        }
        // The peer started an orderly close: finish our half immediately so
        // the server notices the teardown and can re-dial.
        if self.tcp.state() == TcpState::CloseWait {
            if let Some(fin) = self.tcp.close() {
                out.push(fin);
            }
        }
        (out, delivered)
    }

    /// Queue an ASDU for transmission.
    pub fn send_asdu(&mut self, asdu: Asdu, now: f64) -> Vec<Segment> {
        let mut out = Vec::new();
        let mut delivered = Vec::new();
        let actions = self.iec.send(asdu, now);
        self.run_actions(actions, &mut out, &mut delivered);
        out
    }

    /// Ask the IEC layer to start data transfer (controlling side).
    pub fn start_dt(&mut self, now: f64) -> Vec<Segment> {
        let mut out = Vec::new();
        let mut delivered = Vec::new();
        let actions = self.iec.start_dt(now);
        self.run_actions(actions, &mut out, &mut delivered);
        out
    }

    /// Probe the link with an immediate TESTFR act.
    pub fn send_testfr(&mut self, now: f64) -> Vec<Segment> {
        let mut out = Vec::new();
        let mut delivered = Vec::new();
        let actions = self.iec.send_testfr(now);
        self.run_actions(actions, &mut out, &mut delivered);
        out
    }

    /// Advance IEC timers.
    pub fn poll(&mut self, now: f64) -> Vec<Segment> {
        let mut out = Vec::new();
        let mut delivered = Vec::new();
        let actions = self.iec.poll(now);
        self.run_actions(actions, &mut out, &mut delivered);
        out
    }

    /// Abort at the TCP level (RST).
    pub fn abort(&mut self) -> Option<Segment> {
        self.tcp.abort()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uncharted_iec104::asdu::{InfoObject, IoValue};
    use uncharted_iec104::cot::{Cause, Cot};
    use uncharted_iec104::elements::Qds;
    use uncharted_iec104::types::TypeId;
    use uncharted_nettap::ipv4::addr;
    use uncharted_nettap::stack::{AcceptPolicy, SocketAddr};

    fn pump_pair(
        server: &mut Iec104Link,
        rtu: &mut Iec104Link,
        first: Vec<Segment>,
        now: f64,
    ) -> Vec<Asdu> {
        let mut delivered = Vec::new();
        let mut wire = first;
        while let Some(seg) = wire.pop() {
            let (replies, asdus) = if seg.dst == server.tcp.local() {
                server.on_segment(&seg, 777, now)
            } else {
                rtu.on_segment(&seg, 888, now)
            };
            wire.extend(replies);
            delivered.extend(asdus);
        }
        delivered
    }

    #[test]
    fn end_to_end_data_delivery() {
        let s_addr = SocketAddr::new(addr(10, 0, 0, 1), 40000);
        let r_addr = SocketAddr::new(addr(10, 1, 3, 3), 2404);
        let (tcp_c, syn) = TcpEndpoint::connect(s_addr, r_addr, 100);
        let mut server = Iec104Link::new(
            tcp_c,
            Role::Controlling,
            ConnConfig::default(),
            Dialect::STANDARD,
            0.0,
        );
        let mut rtu = Iec104Link::new(
            TcpEndpoint::listen(r_addr, AcceptPolicy::Accept),
            Role::Controlled,
            ConnConfig::default(),
            Dialect::STANDARD,
            0.0,
        );
        pump_pair(&mut server, &mut rtu, vec![syn], 0.0);
        assert!(server.established() && rtu.established());

        // STARTDT handshake.
        let out = server.start_dt(0.1);
        pump_pair(&mut server, &mut rtu, out, 0.1);

        // RTU reports a measurement; the server should receive it.
        let asdu = Asdu::new(TypeId::M_ME_NC_1, Cot::new(Cause::Spontaneous), 3).with_object(
            InfoObject::new(
                700,
                IoValue::FloatMeasurement {
                    value: 130.1,
                    qds: Qds::GOOD,
                },
            ),
        );
        let out = rtu.send_asdu(asdu.clone(), 0.2);
        assert!(!out.is_empty());
        let delivered = pump_pair(&mut server, &mut rtu, out, 0.2);
        assert_eq!(delivered, vec![asdu]);
    }

    #[test]
    fn legacy_dialect_end_to_end() {
        let s_addr = SocketAddr::new(addr(10, 0, 0, 2), 40001);
        let r_addr = SocketAddr::new(addr(10, 1, 9, 28), 2404);
        let (tcp_c, syn) = TcpEndpoint::connect(s_addr, r_addr, 5);
        // Both sides configured for the legacy 1-octet-COT dialect (the
        // vendor option the paper mentions).
        let mut server = Iec104Link::new(
            tcp_c,
            Role::Controlling,
            ConnConfig::default(),
            Dialect::LEGACY_COT,
            0.0,
        );
        let mut rtu = Iec104Link::new(
            TcpEndpoint::listen(r_addr, AcceptPolicy::Accept),
            Role::Controlled,
            ConnConfig::default(),
            Dialect::LEGACY_COT,
            0.0,
        );
        pump_pair(&mut server, &mut rtu, vec![syn], 0.0);
        let out = server.start_dt(0.1);
        pump_pair(&mut server, &mut rtu, out, 0.1);
        let asdu = Asdu::new(TypeId::M_ME_NC_1, Cot::new(Cause::Periodic), 28).with_object(
            InfoObject::new(
                700,
                IoValue::FloatMeasurement {
                    value: 48.8,
                    qds: Qds::GOOD,
                },
            ),
        );
        let report = rtu.send_asdu(asdu.clone(), 0.2);
        let delivered = pump_pair(&mut server, &mut rtu, report, 0.2);
        assert_eq!(delivered, vec![asdu]);
    }

    #[test]
    fn poll_emits_keepalive_after_t3() {
        let s_addr = SocketAddr::new(addr(10, 0, 0, 1), 40002);
        let r_addr = SocketAddr::new(addr(10, 1, 3, 4), 2404);
        let (tcp_c, syn) = TcpEndpoint::connect(s_addr, r_addr, 100);
        let mut server = Iec104Link::new(
            tcp_c,
            Role::Controlling,
            ConnConfig::default(),
            Dialect::STANDARD,
            0.0,
        );
        let mut rtu = Iec104Link::new(
            TcpEndpoint::listen(r_addr, AcceptPolicy::Accept),
            Role::Controlled,
            ConnConfig::default(),
            Dialect::STANDARD,
            0.0,
        );
        pump_pair(&mut server, &mut rtu, vec![syn], 0.0);
        let out = server.poll(25.0);
        assert_eq!(out.len(), 1, "TESTFR after T3 idle");
        // Unanswered: after T1 the link asks to close (FIN).
        let out = server.poll(41.0);
        assert!(out.iter().any(|s| s.flags.fin()));
        assert_eq!(server.fate(), LinkFate::CloseRequested);
    }
}
