#![warn(missing_docs)]
//! # uncharted-scadasim
//!
//! A deterministic simulator of the federated SCADA network the paper
//! measured: four control servers (C1–C4), 27 substations (S1–S27) and 58
//! outstations (O1–O58) speaking IEC 60870-5-104 over a private TCP/IP
//! network, taped exactly like the paper's Fig. 5.
//!
//! The simulator exists because the paper's dataset — captures from a real
//! balancing authority — is closed. Instead of the data we reproduce the
//! *mechanisms* that generated it, so the measurement pipeline has something
//! faithful to rediscover:
//!
//! * the Y1/Y2 topology delta of Table 2 (new substations, 101→104
//!   upgrades, backup RTUs, maintenance, removals),
//! * the legacy dialects of §6.1 (O37's 2-octet IOAs; O53/O58/O28's 1-octet
//!   COT),
//! * the eight behavioural profiles of Table 6/Fig. 17, including backup
//!   connections refused by RST, ignored keep-alives, the O30 T3=430 s
//!   outlier, spontaneous-only reporting with oversized thresholds, and
//!   primary/secondary switchovers,
//! * AGC set point traffic driven by a real closed control loop over the
//!   simulated power grid.
//!
//! Everything is seeded; the same scenario always yields byte-identical
//! captures.

pub mod attacker;
pub mod background;
pub mod endpoint;
pub mod outstation;
pub mod profiles;
pub mod replay;
pub mod scenario;
pub mod server;
pub mod sim;
pub mod topology;

pub use attacker::AttackSpec;
pub use profiles::{BackupBehavior, ProfileType};
pub use replay::{ReplayPlan, ReplayStats};
pub use scenario::{CaptureSet, Scenario, Year};
pub use sim::Simulation;
pub use topology::{OutstationSpec, PointSpec, ReportKind, ServerId, Topology};
