//! Outstation (RTU) behaviour: accepting or misbehaving on incoming
//! connections, periodic and spontaneous reporting, interrogation
//! responses, and applying AGC set points to the grid.

use crate::endpoint::Iec104Link;
use crate::profiles::BackupBehavior;
use crate::scenario::Year;
use crate::topology::{OutstationSpec, PointSpec, ReportKind, IEC104_PORT};
use rand::rngs::StdRng;
use rand::Rng;

use std::collections::{BTreeMap, HashMap};
use uncharted_iec104::asdu::{Asdu, InfoObject, IoValue};
use uncharted_iec104::conn::{ConnConfig, DtState, Role};
use uncharted_iec104::cot::{Cause, Cot};
use uncharted_iec104::elements::{Cp56Time2a, Diq, DoublePoint, Nva, Qds, Siq, Vti};
use uncharted_iec104::types::TypeId;
use uncharted_nettap::stack::{AcceptPolicy, Segment, SocketAddr, TcpEndpoint};
use uncharted_powergrid::dynamics::{gaussian, PowerGrid};
use uncharted_powergrid::model::GeneratorId;
use uncharted_powergrid::sensors::{PhysicalQuantity, SensorBinding};

/// Maximum information objects batched into one reporting ASDU.
const MAX_BATCH: usize = 16;

/// Side effects an outstation raises toward the simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Effect {
    /// An AGC set point (`I50`) was accepted: apply it to the generator.
    ApplySetpoint(GeneratorId, f64),
    /// A single command (`I45`) operated the breaker: `true` = close.
    OperateBreaker(GeneratorId, bool),
}

/// One live inbound connection.
#[derive(Debug)]
enum InboundLink {
    /// Full IEC 104 processing.
    Iec(
        Box<Iec104Link>,
        bool, /* was started (for on-start reports) */
    ),
    /// Accept TCP, reset on the first APDU (the RejectApdu misbehaviour).
    RejectOnApdu(TcpEndpoint),
    /// Accept TCP, swallow everything silently (IgnoreTestFr).
    Deaf(TcpEndpoint),
    /// TCP-level accept-then-FIN (the policy does the work).
    FinAfterAccept(TcpEndpoint),
}

/// A simulated outstation.
#[derive(Debug)]
pub struct OutstationSim {
    /// The static description.
    pub spec: OutstationSpec,
    points: Vec<PointSpec>,
    addr: SocketAddr,
    links: BTreeMap<SocketAddr, InboundLink>,
    /// Last periodic report time per IOA.
    last_periodic: HashMap<u32, f64>,
    /// Last transmitted value per spontaneous IOA.
    last_sent: HashMap<u32, f64>,
    /// Last transmitted status code per status IOA.
    last_status: HashMap<u32, u8>,
    next_sample: f64,
    isn: u32,
}

impl OutstationSim {
    /// Instantiate for a capture year.
    pub fn new(spec: &OutstationSpec, year: Year) -> OutstationSim {
        let points = spec.points_in_year(year);
        OutstationSim {
            addr: SocketAddr::new(spec.ip(), IEC104_PORT),
            points,
            links: BTreeMap::new(),
            last_periodic: HashMap::new(),
            last_sent: HashMap::new(),
            last_status: HashMap::new(),
            next_sample: 0.0,
            isn: 10_000 + spec.id as u32 * 977,
            spec: spec.clone(),
        }
    }

    /// The listening address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of field points this year.
    pub fn point_count(&self) -> usize {
        self.points.len()
    }

    /// True while any IEC link is in STARTDT state (a primary is active).
    pub fn has_started_link(&self) -> bool {
        self.links.iter().any(|(_, l)| {
            matches!(l, InboundLink::Iec(link, _) if link.iec.dt_state() == DtState::Started)
        })
    }

    fn next_isn(&mut self) -> u32 {
        self.isn = self.isn.wrapping_mul(1_103_515_245).wrapping_add(12_345);
        self.isn
    }

    /// Handle one incoming TCP segment.
    pub fn on_segment(
        &mut self,
        seg: &Segment,
        now: f64,
        grid: &PowerGrid,
        rng: &mut StdRng,
    ) -> (Vec<Segment>, Vec<Effect>) {
        let mut out = Vec::new();
        let mut effects = Vec::new();
        let from = seg.src;

        if !self.links.contains_key(&from) {
            let bare_syn = seg.flags.syn() && !seg.flags.ack();
            if !bare_syn {
                // Stray segment for a connection we no longer track.
                return (out, effects);
            }
            // New connection: choose the treatment. The misconfigured RTUs
            // only reject *backup* channels: while a STARTDT'd data channel
            // is up, any further connection is a backup. When the main
            // connection is down they "readily accept the backup connection"
            // (paper §6.2), so the gate is on started links, not established
            // ones.
            let misbehave = !self.spec.profile.has_primary() || self.has_started_link();
            let link = match (self.spec.backup, misbehave) {
                (BackupBehavior::RejectApdu, true) => {
                    InboundLink::RejectOnApdu(TcpEndpoint::listen(self.addr, AcceptPolicy::Accept))
                }
                (BackupBehavior::AcceptThenFin, true) => InboundLink::FinAfterAccept(
                    TcpEndpoint::listen(self.addr, AcceptPolicy::AcceptThenFin),
                ),
                (BackupBehavior::IgnoreTestFr, true) => {
                    InboundLink::Deaf(TcpEndpoint::listen(self.addr, AcceptPolicy::Accept))
                }
                _ => {
                    // Idle-link keep-alives: the server probes secondaries
                    // every 30 s; the RTU's own T3 sits just above so the
                    // server drives the cadence (the paper's 30 s average).
                    // Type 5 keeps the standard 20 s default — that is what
                    // makes its sparse spontaneous stream sprout keep-alives.
                    let t3 = if self.spec.profile == crate::profiles::ProfileType::SpontaneousStale
                    {
                        20.0
                    } else {
                        35.0
                    };
                    InboundLink::Iec(
                        Box::new(Iec104Link::new(
                            TcpEndpoint::listen(self.addr, AcceptPolicy::Accept),
                            Role::Controlled,
                            ConnConfig {
                                t3,
                                ..Default::default()
                            },
                            self.spec.dialect,
                            now,
                        )),
                        false,
                    )
                }
            };
            self.links.insert(from, link);
        }

        let isn = self.next_isn();
        let mut drop_link = false;
        if let Some(link) = self.links.get_mut(&from) {
            match link {
                InboundLink::Iec(iec_link, _) => {
                    let (replies, delivered) = iec_link.on_segment(seg, isn, now);
                    out.extend(replies);
                    for asdu in delivered {
                        let (mut replies, mut eff) =
                            handle_asdu(iec_link, &self.points, &self.spec, &asdu, now, grid, rng);
                        out.append(&mut replies);
                        effects.append(&mut eff);
                    }
                    if iec_link.tcp.is_closed() {
                        drop_link = true;
                    }
                }
                InboundLink::RejectOnApdu(tcp) => {
                    let (replies, payload) = tcp.on_segment(seg, isn);
                    out.extend(replies);
                    if !payload.is_empty() {
                        // The server spoke IEC 104: slam the door.
                        if let Some(rst) = tcp.abort() {
                            out.push(rst);
                        }
                        drop_link = true;
                    }
                    if tcp.is_closed() {
                        drop_link = true;
                    }
                }
                InboundLink::Deaf(tcp) | InboundLink::FinAfterAccept(tcp) => {
                    let (replies, _payload) = tcp.on_segment(seg, isn);
                    out.extend(replies);
                    if tcp.state() == uncharted_nettap::stack::TcpState::CloseWait {
                        if let Some(fin) = tcp.close() {
                            out.push(fin);
                        }
                    }
                    if tcp.is_closed() {
                        drop_link = true;
                    }
                }
            }
        }
        if drop_link {
            self.links.remove(&from);
        }
        (out, effects)
    }

    /// Periodic work: timers, reporting, housekeeping.
    pub fn poll(&mut self, now: f64, grid: &PowerGrid, rng: &mut StdRng) -> Vec<Segment> {
        let mut out = Vec::new();
        // Advance IEC timers; collect newly started links.
        let mut newly_started: Vec<SocketAddr> = Vec::new();
        let mut dead: Vec<SocketAddr> = Vec::new();
        for (addr, link) in self.links.iter_mut() {
            if let InboundLink::Iec(iec_link, was_started) = link {
                out.extend(iec_link.poll(now));
                let started = iec_link.iec.dt_state() == DtState::Started;
                if started && !*was_started {
                    newly_started.push(*addr);
                }
                *was_started = started;
                if iec_link.tcp.is_closed() {
                    dead.push(*addr);
                }
            }
        }
        for addr in dead {
            self.links.remove(&addr);
        }

        // STARTDT just completed: emit the on-start reports (I70, I7).
        for addr in newly_started {
            let mut asdus = Vec::new();
            if self.spec.id % 13 == 3
                || self.spec.profile == crate::profiles::ProfileType::SwitchoverObserved
            {
                asdus.push(
                    Asdu::new(
                        TypeId::M_EI_NA_1,
                        Cot::new(Cause::Initialized),
                        self.spec.common_address,
                    )
                    .with_object(InfoObject::new(0, IoValue::EndOfInit { coi: 0 })),
                );
            }
            for p in &self.points {
                if matches!(p.report, ReportKind::BitstringOnStart) {
                    asdus.push(
                        Asdu::new(
                            TypeId::M_BO_NA_1,
                            Cot::new(Cause::Spontaneous),
                            self.spec.common_address,
                        )
                        .with_object(InfoObject::new(
                            p.ioa,
                            IoValue::Bitstring {
                                bits: 0x0001_0305,
                                qds: Qds::GOOD,
                            },
                        )),
                    );
                }
            }
            if let Some(InboundLink::Iec(link, _)) = self.links.get_mut(&addr) {
                for asdu in asdus {
                    out.extend(link.send_asdu(asdu, now));
                }
            }
        }

        // Reporting only flows on a started link.
        let Some(report_addr) = self.report_link_addr() else {
            return out;
        };

        let mut asdus: Vec<Asdu> = Vec::new();
        // Periodic cyclic reports.
        let mut due_floats: Vec<(u32, f64)> = Vec::new();
        let mut due_normalized: Vec<(u32, f64)> = Vec::new();
        let mut due_steps: Vec<(u32, f64)> = Vec::new();
        for p in &self.points {
            let period = match p.report {
                ReportKind::PeriodicFloat { period_s } => Some(period_s),
                ReportKind::PeriodicNormalized { period_s } => Some(period_s),
                ReportKind::PeriodicStep { period_s } => Some(period_s),
                _ => None,
            };
            let Some(period) = period else { continue };
            let last = self
                .last_periodic
                .get(&p.ioa)
                .copied()
                .unwrap_or(f64::NEG_INFINITY);
            if now - last < period {
                continue;
            }
            self.last_periodic.insert(p.ioa, now);
            let v = read_point(&self.spec, p, grid, rng);
            match p.report {
                ReportKind::PeriodicFloat { .. } => due_floats.push((p.ioa, v)),
                ReportKind::PeriodicNormalized { .. } => due_normalized.push((p.ioa, v)),
                ReportKind::PeriodicStep { .. } => due_steps.push((p.ioa, v)),
                _ => unreachable!(),
            }
        }
        for chunk in due_floats.chunks(MAX_BATCH) {
            let mut asdu = Asdu::new(
                TypeId::M_ME_NC_1,
                Cot::new(Cause::Periodic),
                self.spec.common_address,
            );
            for &(ioa, v) in chunk {
                asdu.objects.push(InfoObject::new(
                    ioa,
                    IoValue::FloatMeasurement {
                        value: v as f32,
                        qds: Qds::GOOD,
                    },
                ));
            }
            asdus.push(asdu);
        }
        for chunk in due_normalized.chunks(MAX_BATCH) {
            let mut asdu = Asdu::new(
                TypeId::M_ME_NA_1,
                Cot::new(Cause::Periodic),
                self.spec.common_address,
            );
            for &(ioa, v) in chunk {
                asdu.objects.push(InfoObject::new(
                    ioa,
                    IoValue::NormalizedMeasurement {
                        nva: Nva::from_f64((v / 400.0).clamp(-0.999, 0.999)),
                        qds: Qds::GOOD,
                    },
                ));
            }
            asdus.push(asdu);
        }
        for chunk in due_steps.chunks(MAX_BATCH) {
            let mut asdu = Asdu::new(
                TypeId::M_ST_NA_1,
                Cot::new(Cause::Periodic),
                self.spec.common_address,
            );
            for &(ioa, v) in chunk {
                asdu.objects.push(InfoObject::new(
                    ioa,
                    IoValue::StepPosition {
                        vti: Vti::new((v % 32.0) as i8, false),
                        qds: Qds::GOOD,
                    },
                ));
            }
            asdus.push(asdu);
        }

        // Spontaneous checks on the sampling cadence.
        if now >= self.next_sample {
            self.next_sample = now + 2.0;
            let tag = Cp56Time2a::from_epoch_millis((now * 1000.0) as u64);
            let mut due_spont: Vec<(u32, f64)> = Vec::new();
            for p in &self.points {
                match p.report {
                    ReportKind::SpontaneousFloat { threshold } => {
                        let v = read_point(&self.spec, p, grid, rng);
                        let thr = threshold * quantity_scale(p.quantity);
                        let last = self.last_sent.get(&p.ioa).copied();
                        if last.map(|l| (v - l).abs() > thr).unwrap_or(true) {
                            self.last_sent.insert(p.ioa, v);
                            due_spont.push((p.ioa, v));
                        }
                    }
                    ReportKind::SpontaneousDoublePoint
                    | ReportKind::SpontaneousSinglePoint
                    | ReportKind::SpontaneousPlainSinglePoint => {
                        let mut v = read_point(&self.spec, p, grid, rng) as u8;
                        // Field alarms occasionally chatter: a brief flip on
                        // single-point alarm inputs (keeps the rare I1/I30
                        // types present in captures, as in the paper's
                        // Table 7 tail).
                        if !matches!(p.report, ReportKind::SpontaneousDoublePoint)
                            && rng.random::<f64>() < 0.004
                        {
                            v = if v == 2 { 1 } else { 2 };
                        }
                        let last = self.last_status.get(&p.ioa).copied();
                        if last != Some(v) {
                            self.last_status.insert(p.ioa, v);
                            // First observation primes state without traffic.
                            if last.is_none() {
                                continue;
                            }
                            let asdu = match p.report {
                                ReportKind::SpontaneousDoublePoint => Asdu::new(
                                    TypeId::M_DP_TB_1,
                                    Cot::new(Cause::Spontaneous),
                                    self.spec.common_address,
                                )
                                .with_object(
                                    InfoObject::new(
                                        p.ioa,
                                        IoValue::DoublePoint {
                                            diq: Diq::from_point(DoublePoint::from_code(v)),
                                        },
                                    )
                                    .with_time(tag),
                                ),
                                ReportKind::SpontaneousSinglePoint => Asdu::new(
                                    TypeId::M_SP_TB_1,
                                    Cot::new(Cause::Spontaneous),
                                    self.spec.common_address,
                                )
                                .with_object(
                                    InfoObject::new(
                                        p.ioa,
                                        IoValue::SinglePoint {
                                            siq: Siq::from_state(v == 2),
                                        },
                                    )
                                    .with_time(tag),
                                ),
                                _ => Asdu::new(
                                    TypeId::M_SP_NA_1,
                                    Cot::new(Cause::Spontaneous),
                                    self.spec.common_address,
                                )
                                .with_object(InfoObject::new(
                                    p.ioa,
                                    IoValue::SinglePoint {
                                        siq: Siq::from_state(v == 2),
                                    },
                                )),
                            };
                            asdus.push(asdu);
                        }
                    }
                    _ => {}
                }
            }
            for chunk in due_spont.chunks(MAX_BATCH) {
                let mut asdu = Asdu::new(
                    TypeId::M_ME_TF_1,
                    Cot::new(Cause::Spontaneous),
                    self.spec.common_address,
                );
                for &(ioa, v) in chunk {
                    asdu.objects.push(
                        InfoObject::new(
                            ioa,
                            IoValue::FloatMeasurement {
                                value: v as f32,
                                qds: Qds::GOOD,
                            },
                        )
                        .with_time(tag),
                    );
                }
                asdus.push(asdu);
            }
        }

        if let Some(InboundLink::Iec(link, _)) = self.links.get_mut(&report_addr) {
            for asdu in asdus {
                out.extend(link.send_asdu(asdu, now));
            }
        }
        out
    }

    fn report_link_addr(&self) -> Option<SocketAddr> {
        // Started *and* still established: a link draining its close
        // handshake must not swallow reports.
        self.links.iter().find_map(|(addr, l)| match l {
            InboundLink::Iec(link, _)
                if link.iec.dt_state() == DtState::Started && link.established() =>
            {
                Some(*addr)
            }
            _ => None,
        })
    }
}

/// Per-quantity threshold scaling: thresholds in `ReportKind` are expressed
/// in "voltage-like" units and scaled to each quantity's magnitude.
fn quantity_scale(q: PhysicalQuantity) -> f64 {
    match q {
        PhysicalQuantity::Current => 12.0,
        PhysicalQuantity::ActivePower => 3.0,
        PhysicalQuantity::ReactivePower => 2.0,
        PhysicalQuantity::Voltage | PhysicalQuantity::GridVoltage => 1.0,
        PhysicalQuantity::Frequency => 0.01,
        PhysicalQuantity::BreakerStatus => 1.0,
        PhysicalQuantity::AgcSetpoint => 3.0,
    }
}

/// Read the current value of a point, from the bound generator when there
/// is one, or from plausible transmission-line figures for auxiliary
/// (non-generation) substations.
fn read_point(spec: &OutstationSpec, p: &PointSpec, grid: &PowerGrid, rng: &mut StdRng) -> f64 {
    if p.quantity == PhysicalQuantity::Frequency {
        return grid.frequency_hz + gaussian(rng, 0.0, 0.0015);
    }
    if let Some(link) = spec.generator {
        let binding = SensorBinding::on_generator(link.generator, p.quantity);
        return binding.read(grid, rng).value;
    }
    // Auxiliary substations: line measurements.
    match p.quantity {
        PhysicalQuantity::Voltage | PhysicalQuantity::GridVoltage => {
            345.0 + gaussian(rng, 0.0, 0.25)
        }
        PhysicalQuantity::Current => 420.0 + gaussian(rng, 0.0, 3.0),
        PhysicalQuantity::ActivePower => {
            150.0 + 20.0 * (grid.time / 900.0).sin() + gaussian(rng, 0.0, 1.0)
        }
        PhysicalQuantity::ReactivePower => 30.0 + gaussian(rng, 0.0, 0.8),
        PhysicalQuantity::BreakerStatus => 2.0,
        PhysicalQuantity::AgcSetpoint | PhysicalQuantity::Frequency => 0.0,
    }
}

/// Handle an application ASDU arriving on a started link.
fn handle_asdu(
    link: &mut Iec104Link,
    points: &[PointSpec],
    spec: &OutstationSpec,
    asdu: &Asdu,
    now: f64,
    grid: &PowerGrid,
    rng: &mut StdRng,
) -> (Vec<Segment>, Vec<Effect>) {
    let mut out = Vec::new();
    let mut effects = Vec::new();
    let ca = spec.common_address;
    match (asdu.type_id, asdu.cot.cause) {
        // General interrogation: confirm, dump everything, terminate.
        (TypeId::C_IC_NA_1, Cause::Activation) => {
            let mut con = asdu.clone();
            con.cot = Cot::new(Cause::ActivationCon);
            out.extend(link.send_asdu(con, now));

            // Analog points as I13 (COT=interrogated).
            let analogs: Vec<&PointSpec> = points
                .iter()
                .filter(|p| p.quantity != PhysicalQuantity::BreakerStatus)
                .collect();
            for chunk in analogs.chunks(MAX_BATCH) {
                let mut dump = Asdu::new(
                    TypeId::M_ME_NC_1,
                    Cot::new(Cause::InterrogatedByStation),
                    ca,
                );
                for p in chunk {
                    let v = read_point(spec, p, grid, rng);
                    dump.objects.push(InfoObject::new(
                        p.ioa,
                        IoValue::FloatMeasurement {
                            value: v as f32,
                            qds: Qds::GOOD,
                        },
                    ));
                }
                out.extend(link.send_asdu(dump, now));
            }
            // Status points: double points as I3, single-point alarms as I1
            // (the value encodings must stay consistent with the points'
            // spontaneous reports).
            let doubles: Vec<&PointSpec> = points
                .iter()
                .filter(|p| {
                    p.quantity == PhysicalQuantity::BreakerStatus
                        && !matches!(
                            p.report,
                            ReportKind::SpontaneousSinglePoint
                                | ReportKind::SpontaneousPlainSinglePoint
                        )
                })
                .collect();
            for chunk in doubles.chunks(MAX_BATCH) {
                let mut dump = Asdu::new(
                    TypeId::M_DP_NA_1,
                    Cot::new(Cause::InterrogatedByStation),
                    ca,
                );
                for p in chunk {
                    let v = read_point(spec, p, grid, rng) as u8;
                    dump.objects.push(InfoObject::new(
                        p.ioa,
                        IoValue::DoublePoint {
                            diq: Diq::from_point(DoublePoint::from_code(v)),
                        },
                    ));
                }
                out.extend(link.send_asdu(dump, now));
            }
            let singles: Vec<&PointSpec> = points
                .iter()
                .filter(|p| {
                    matches!(
                        p.report,
                        ReportKind::SpontaneousSinglePoint
                            | ReportKind::SpontaneousPlainSinglePoint
                    )
                })
                .collect();
            for chunk in singles.chunks(MAX_BATCH) {
                let mut dump = Asdu::new(
                    TypeId::M_SP_NA_1,
                    Cot::new(Cause::InterrogatedByStation),
                    ca,
                );
                for p in chunk {
                    let v = read_point(spec, p, grid, rng) as u8;
                    dump.objects.push(InfoObject::new(
                        p.ioa,
                        IoValue::SinglePoint {
                            siq: Siq::from_state(v == 2),
                        },
                    ));
                }
                out.extend(link.send_asdu(dump, now));
            }
            let mut term = asdu.clone();
            term.cot = Cot::new(Cause::ActivationTermination);
            out.extend(link.send_asdu(term, now));
        }
        // AGC set point: confirm and apply.
        (TypeId::C_SE_NC_1, Cause::Activation) => {
            let mut con = asdu.clone();
            con.cot = Cot::new(Cause::ActivationCon);
            out.extend(link.send_asdu(con, now));
            if let Some(glink) = spec.generator {
                for obj in &asdu.objects {
                    if let IoValue::FloatSetpoint { value, .. } = obj.value {
                        effects.push(Effect::ApplySetpoint(glink.generator, value as f64));
                    }
                }
            }
        }
        // Single command against the breaker point: confirm and operate.
        // (Legitimate operators rarely use this in our scenarios; the
        // Industroyer-style attacker does.)
        (TypeId::C_SC_NA_1, Cause::Activation) => {
            let mut con = asdu.clone();
            con.cot = Cot::new(Cause::ActivationCon);
            out.extend(link.send_asdu(con, now));
            if let Some(glink) = spec.generator {
                for obj in &asdu.objects {
                    if let IoValue::SingleCommand { sco } = obj.value {
                        effects.push(Effect::OperateBreaker(glink.generator, sco & 0x01 == 1));
                    }
                }
            }
        }
        // Clock sync: confirm.
        (TypeId::C_CS_NA_1, Cause::Activation) => {
            let mut con = asdu.clone();
            con.cot = Cot::new(Cause::ActivationCon);
            out.extend(link.send_asdu(con, now));
        }
        _ => {}
    }
    (out, effects)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;
    use rand::SeedableRng;
    use uncharted_nettap::ipv4::addr;

    fn setup(o: usize) -> (OutstationSim, PowerGrid, StdRng) {
        let topo = Topology::paper_network();
        let spec = topo.outstation(o).unwrap().clone();
        let grid = PowerGrid::new(topo.grid);
        (
            OutstationSim::new(&spec, Year::Y1),
            grid,
            StdRng::seed_from_u64(5),
        )
    }

    fn server_addr() -> SocketAddr {
        SocketAddr::new(addr(10, 0, 0, 1), 40100)
    }

    fn syn_to(o: &OutstationSim) -> Segment {
        Segment {
            src: server_addr(),
            dst: o.addr(),
            seq: 999,
            ack: 0,
            flags: uncharted_nettap::tcp::TcpFlags::SYN,
            payload: Vec::new(),
        }
    }

    #[test]
    fn normal_outstation_completes_handshake() {
        let (mut o, grid, mut rng) = setup(3);
        let (replies, _) = o.on_segment(&syn_to(&o), 0.0, &grid, &mut rng);
        assert_eq!(replies.len(), 1);
        assert!(replies[0].flags.syn() && replies[0].flags.ack());
    }

    #[test]
    fn reject_apdu_outstation_rsts_on_first_apdu() {
        let (mut o, grid, mut rng) = setup(7); // O7: resetting backup
        let (synack, _) = o.on_segment(&syn_to(&o), 0.0, &grid, &mut rng);
        assert!(synack[0].flags.syn() && synack[0].flags.ack());
        // Complete handshake.
        let ack = Segment {
            src: server_addr(),
            dst: o.addr(),
            seq: 1000,
            ack: synack[0].seq.wrapping_add(1),
            flags: uncharted_nettap::tcp::TcpFlags::ACK,
            payload: Vec::new(),
        };
        o.on_segment(&ack, 0.1, &grid, &mut rng);
        // Server's U16 probe triggers the RST.
        let probe = Segment {
            src: server_addr(),
            dst: o.addr(),
            seq: 1000,
            ack: synack[0].seq.wrapping_add(1),
            flags: uncharted_nettap::tcp::TcpFlags::ACK.with(uncharted_nettap::tcp::TcpFlags::PSH),
            payload: vec![0x68, 0x04, 0x43, 0x00, 0x00, 0x00],
        };
        let (replies, _) = o.on_segment(&probe, 0.2, &grid, &mut rng);
        assert!(
            replies.iter().any(|s| s.flags.rst()),
            "must RST on the APDU"
        );
    }

    #[test]
    fn started_outstation_reports_measurements() {
        let (mut o, grid, mut rng) = setup(3);
        // Handshake + STARTDT through a real link pair.
        let (mut server_tcp, syn) =
            uncharted_nettap::stack::TcpEndpoint::connect(server_addr(), o.addr(), 50);
        let (synack, _) = o.on_segment(&syn, 0.0, &grid, &mut rng);
        let (acks, _) = server_tcp.on_segment(&synack[0], 0);
        o.on_segment(&acks[0], 0.0, &grid, &mut rng);
        // STARTDT act.
        let startdt = server_tcp
            .send(vec![0x68, 0x04, 0x07, 0x00, 0x00, 0x00])
            .unwrap();
        let (replies, _) = o.on_segment(&startdt, 0.1, &grid, &mut rng);
        // The RTU confirms with STARTDT con.
        assert!(replies.iter().any(|s| s.payload.windows(1).any(|_| true)));
        assert!(o.has_started_link());
        // Now reporting fires on poll.
        let mut got_data = false;
        for t in 1..40 {
            let segs = o.poll(t as f64, &grid, &mut rng);
            if segs.iter().any(|s| !s.payload.is_empty()) {
                got_data = true;
                break;
            }
        }
        assert!(got_data, "started outstation must report");
    }

    #[test]
    fn backup_rtu_never_reports() {
        let (mut o, grid, mut rng) = setup(11); // O11: backup RTU
                                                // No connection, no reports; and even with one, no STARTDT ever
                                                // happens, so poll produces no data segments.
        for t in 0..30 {
            let segs = o.poll(t as f64, &grid, &mut rng);
            assert!(segs.iter().all(|s| s.payload.is_empty()));
        }
    }

    #[test]
    fn legacy_outstation_uses_its_dialect() {
        let topo = Topology::paper_network();
        assert_eq!(
            OutstationSim::new(topo.outstation(28).unwrap(), Year::Y1)
                .spec
                .dialect,
            uncharted_iec104::dialect::Dialect::LEGACY_COT
        );
    }
}
