//! The eight outstation behaviour profiles of the paper's Table 6 /
//! Fig. 17, plus the backup-connection misbehaviours behind them.

use serde::{Deserialize, Serialize};

/// How an outstation treats the *backup* (secondary) connection attempt
/// from the inactive control server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BackupBehavior {
    /// Standard: accept it and answer keep-alives (`U16`/`U32` pairs).
    Normal,
    /// No secondary connection is offered at all (the backup server never
    /// dials this outstation).
    None,
    /// Accept TCP, then reset the connection the moment the server speaks
    /// IEC 104 (its post-connect `U16` probe) — the Fig. 9 storm of
    /// sub-second flows whose Markov sessions contain only `U16`.
    RejectApdu,
    /// Accept the TCP handshake, then immediately FIN (the other observed
    /// rejection flavour).
    AcceptThenFin,
    /// Accept TCP but never answer IEC 104 keep-alives: the server sends
    /// `U16` into the void until its T1 expires — the Fig. 14 Markov chain
    /// with a single `U16` self-loop.
    IgnoreTestFr,
}

/// The paper's outstation taxonomy (Table 6, with the two extra classes
/// defined in the Fig. 13 discussion as types 7 and 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ProfileType {
    /// 1 — primary connection only, I-format only; no secondary.
    PrimaryOnly,
    /// 2 — ideal: primary I-format plus secondary with `U16`/`U32`.
    Ideal,
    /// 3 — U-format only: a redundant backup RTU that never goes primary.
    BackupRtu,
    /// 4 — I-format only, but to *both* servers across captures (switched
    /// between datasets).
    SwitchedBetweenCaptures,
    /// 5 — single server, both I and U formats: spontaneous-only reporting
    /// with oversized thresholds forces T3 keep-alives mid-stream (and the
    /// stale-data complaint the operator confirmed).
    SpontaneousStale,
    /// 6 — primary I-format plus a secondary that shows `U16` only (the
    /// outstation never confirms keep-alives).
    HalfDeafBackup,
    /// 7 — backup RTU whose every connection attempt collapses: the point
    /// (1,1) in Fig. 13.
    ResettingBackup,
    /// 8 — a server switchover observed *during* the capture (Fig. 16).
    SwitchoverObserved,
}

impl ProfileType {
    /// The paper's numeric label.
    pub fn number(self) -> u8 {
        match self {
            ProfileType::PrimaryOnly => 1,
            ProfileType::Ideal => 2,
            ProfileType::BackupRtu => 3,
            ProfileType::SwitchedBetweenCaptures => 4,
            ProfileType::SpontaneousStale => 5,
            ProfileType::HalfDeafBackup => 6,
            ProfileType::ResettingBackup => 7,
            ProfileType::SwitchoverObserved => 8,
        }
    }

    /// Table 6 wording.
    pub fn description(self) -> &'static str {
        match self {
            ProfileType::PrimaryOnly => "No secondary connection and I-format only",
            ProfileType::Ideal => "With secondary connection and U16&U32",
            ProfileType::BackupRtu => "U-format only",
            ProfileType::SwitchedBetweenCaptures => "I-format only to both servers",
            ProfileType::SpontaneousStale => "Single server with both I and U formats",
            ProfileType::HalfDeafBackup => "With secondary connection I-format and U16 only",
            ProfileType::ResettingBackup => "Backup RTU resetting every connection attempt",
            ProfileType::SwitchoverObserved => "Switchover from secondary to primary observed",
        }
    }

    /// The backup behaviour this profile implies.
    pub fn backup_behavior(self) -> BackupBehavior {
        match self {
            ProfileType::PrimaryOnly => BackupBehavior::None,
            ProfileType::Ideal => BackupBehavior::Normal,
            ProfileType::BackupRtu => BackupBehavior::Normal,
            ProfileType::SwitchedBetweenCaptures => BackupBehavior::None,
            ProfileType::SpontaneousStale => BackupBehavior::None,
            ProfileType::HalfDeafBackup => BackupBehavior::RejectApdu,
            ProfileType::ResettingBackup => BackupBehavior::RejectApdu,
            ProfileType::SwitchoverObserved => BackupBehavior::Normal,
        }
    }

    /// Whether any server holds a *primary* (I-format) connection to this
    /// outstation. Backup RTUs only ever see keep-alives.
    pub fn has_primary(self) -> bool {
        !matches!(self, ProfileType::BackupRtu | ProfileType::ResettingBackup)
    }

    /// Whether the inactive server of the pair maintains (or attempts) a
    /// secondary connection.
    pub fn has_secondary_attempts(self) -> bool {
        !matches!(
            self,
            ProfileType::PrimaryOnly
                | ProfileType::SwitchedBetweenCaptures
                | ProfileType::SpontaneousStale
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_one_to_eight() {
        let all = [
            ProfileType::PrimaryOnly,
            ProfileType::Ideal,
            ProfileType::BackupRtu,
            ProfileType::SwitchedBetweenCaptures,
            ProfileType::SpontaneousStale,
            ProfileType::HalfDeafBackup,
            ProfileType::ResettingBackup,
            ProfileType::SwitchoverObserved,
        ];
        let nums: Vec<u8> = all.iter().map(|p| p.number()).collect();
        assert_eq!(nums, vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn pathological_profiles_map_to_misbehaviours() {
        assert_eq!(
            ProfileType::ResettingBackup.backup_behavior(),
            BackupBehavior::RejectApdu
        );
        assert_eq!(
            ProfileType::HalfDeafBackup.backup_behavior(),
            BackupBehavior::RejectApdu
        );
        assert_eq!(ProfileType::Ideal.backup_behavior(), BackupBehavior::Normal);
    }

    #[test]
    fn primary_and_secondary_structure() {
        assert!(ProfileType::Ideal.has_primary());
        assert!(!ProfileType::BackupRtu.has_primary());
        assert!(!ProfileType::ResettingBackup.has_primary());
        assert!(!ProfileType::PrimaryOnly.has_secondary_attempts());
        assert!(ProfileType::ResettingBackup.has_secondary_attempts());
        assert!(ProfileType::SwitchoverObserved.has_secondary_attempts());
    }
}
