//! Replay a simulated capture as a live IEC 104 client.
//!
//! `uncharted serve --listen-iec104` speaks the APCI session layer
//! natively, so driving it end-to-end needs a *client* that does too.
//! [`ReplayPlan`] lifts the I-frame ASDUs out of a simulated [`Capture`]
//! (delimiting APDUs per TCP flow with the iec104 [`FrameScanner`],
//! deduplicating retransmitted segments exactly like the batch ingest
//! stage) and re-emits them as one well-formed client session: a STARTDT
//! activation followed by the I-frames renumbered into a single send
//! sequence. ASDU bodies are carried verbatim — byte-for-byte, no decode
//! and re-encode — so private-range dialect quirks survive the trip.
//!
//! The client never waits on the server's acknowledgements to decide what
//! to send (N(R) is pinned to 0: the server side of a replay has no
//! I-frames of its own to acknowledge), which makes the byte stream the
//! server receives — and therefore the analysis it produces — a pure
//! function of the plan. [`ReplayPlan::byte_stream`] exposes those bytes
//! for the offline half of the live-vs-batch parity contract.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::thread;
use std::time::{Duration, Instant};

use uncharted_iec104::apci::{Apci, UFunction, CONTROL_LEN, SEQ_MODULO, START_BYTE};
use uncharted_iec104::scan::{FrameScanner, ScanKind};
use uncharted_nettap::pcap::Capture;

/// A deterministic IEC 104 client session distilled from a capture.
#[derive(Debug, Clone)]
pub struct ReplayPlan {
    /// I-frame ASDU bodies, in capture order, carried verbatim.
    bodies: Vec<Vec<u8>>,
}

/// What a replay moved over the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayStats {
    /// Frames written (STARTDT activation + I-frames).
    pub frames: u64,
    /// Bytes written.
    pub bytes: u64,
    /// Reply bytes the server sent back (confirmations, S-frames).
    pub reply_bytes: u64,
}

impl ReplayPlan {
    /// Distill the client session from a capture: scan every TCP flow for
    /// APDUs, keep each I-frame's ASDU body in capture order.
    pub fn from_capture(capture: &Capture) -> ReplayPlan {
        let mut scanners: HashMap<(u32, u16, u32, u16), FrameScanner> = HashMap::new();
        let mut last_seq: HashMap<(u32, u16, u32, u16), u32> = HashMap::new();
        let mut bodies = Vec::new();
        for pkt in capture.parsed() {
            if pkt.payload.is_empty() {
                continue;
            }
            let key = (pkt.ip.src, pkt.tcp.src_port, pkt.ip.dst, pkt.tcp.dst_port);
            // Retransmitted segments would desynchronise the scanner, as
            // in the batch ingest stage.
            if last_seq.get(&key) == Some(&pkt.tcp.seq) {
                continue;
            }
            last_seq.insert(key, pkt.tcp.seq);
            let scanner = scanners.entry(key).or_default();
            scanner.feed(&pkt.payload);
            while let Some(scanned) = scanner.next_frame() {
                if scanned.kind != ScanKind::Frame {
                    continue;
                }
                let frame = scanner.slice(&scanned.range);
                if frame.len() < 2 + CONTROL_LEN {
                    continue;
                }
                let Ok(apci) = Apci::decode([frame[2], frame[3], frame[4], frame[5]]) else {
                    continue;
                };
                if apci.is_i() {
                    bodies.push(frame[2 + CONTROL_LEN..].to_vec());
                }
            }
        }
        ReplayPlan { bodies }
    }

    /// Number of I-frames the plan will send.
    pub fn i_frames(&self) -> usize {
        self.bodies.len()
    }

    /// The client's frames in send order: STARTDT act, then every I-frame
    /// renumbered into one send sequence (N(R) pinned to 0).
    pub fn frames(&self) -> Vec<Vec<u8>> {
        let mut frames = Vec::with_capacity(self.bodies.len() + 1);
        frames.push(u_frame(UFunction::StartDtAct));
        for (i, body) in self.bodies.iter().enumerate() {
            let send_seq = (i % SEQ_MODULO as usize) as u16;
            let mut frame = Vec::with_capacity(2 + CONTROL_LEN + body.len());
            frame.push(START_BYTE);
            frame.push((CONTROL_LEN + body.len()) as u8);
            frame.extend_from_slice(
                &Apci::I {
                    send_seq,
                    recv_seq: 0,
                }
                .encode(),
            );
            frame.extend_from_slice(body);
            frames.push(frame);
        }
        frames
    }

    /// The exact bytes the client writes — the offline reference stream
    /// for `serve::iec104::equivalent_capture`.
    pub fn byte_stream(&self) -> Vec<u8> {
        self.frames().concat()
    }

    /// Connect to a native-104 listener and replay the plan, draining the
    /// server's confirmations as they arrive. `rate_pps` paces frames per
    /// second (`None` = as fast as the socket accepts). Half-closes after
    /// the last frame and waits for the server to hang up.
    pub fn connect_and_replay<A: ToSocketAddrs>(
        &self,
        addr: A,
        rate_pps: Option<f64>,
    ) -> std::io::Result<ReplayStats> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        // A sibling reader keeps the server's confirmations drained so
        // neither side can stall on a full socket buffer.
        let reader = stream.try_clone()?;
        let drain = thread::spawn(move || {
            let mut reader = reader;
            let mut buf = [0u8; 4096];
            let mut total = 0u64;
            loop {
                match reader.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => total += n as u64,
                }
            }
            total
        });
        let mut writer = stream;
        let start = Instant::now();
        let mut frames = 0u64;
        let mut bytes = 0u64;
        for (i, frame) in self.frames().iter().enumerate() {
            if let Some(pps) = rate_pps {
                if pps > 0.0 {
                    let due = Duration::from_secs_f64(i as f64 / pps);
                    let elapsed = start.elapsed();
                    if due > elapsed {
                        thread::sleep(due - elapsed);
                    }
                }
            }
            writer.write_all(frame)?;
            frames += 1;
            bytes += frame.len() as u64;
        }
        // Half-close: the server sees EOF, finalizes the session, then
        // closes its side, which ends the drain thread.
        writer.shutdown(Shutdown::Write)?;
        let reply_bytes = drain.join().unwrap_or(0);
        Ok(ReplayStats {
            frames,
            bytes,
            reply_bytes,
        })
    }
}

fn u_frame(func: UFunction) -> Vec<u8> {
    let mut frame = vec![START_BYTE, CONTROL_LEN as u8];
    frame.extend_from_slice(&Apci::U(func).encode());
    frame
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Scenario, Year};
    use crate::sim::Simulation;

    fn small_plan() -> ReplayPlan {
        let set = Simulation::new(Scenario::small(Year::Y1, 9, 10.0)).run();
        ReplayPlan::from_capture(&set.merged())
    }

    #[test]
    fn plan_extracts_i_frames_and_renumbers_them() {
        let plan = small_plan();
        assert!(plan.i_frames() > 100, "scenario produced {}", plan.i_frames());
        let frames = plan.frames();
        assert_eq!(frames.len(), plan.i_frames() + 1);
        // Leading STARTDT activation.
        assert_eq!(frames[0], u_frame(UFunction::StartDtAct));
        // Every I-frame is well-formed, in sequence, with N(R) = 0.
        for (i, frame) in frames[1..].iter().enumerate() {
            assert_eq!(frame[0], START_BYTE);
            assert_eq!(frame[1] as usize, frame.len() - 2);
            let apci =
                Apci::decode([frame[2], frame[3], frame[4], frame[5]]).expect("valid APCI");
            match apci {
                Apci::I { send_seq, recv_seq } => {
                    assert_eq!(send_seq as usize, i % SEQ_MODULO as usize);
                    assert_eq!(recv_seq, 0);
                }
                other => panic!("expected I-frame, got {other:?}"),
            }
        }
    }

    #[test]
    fn byte_stream_is_deterministic() {
        let a = small_plan().byte_stream();
        let b = small_plan().byte_stream();
        assert!(!a.is_empty());
        assert_eq!(a, b, "same scenario seed must replay identically");
    }
}
