//! Capture campaign descriptions and their results.
//!
//! The paper collected 5 captures (~8 h total) in year 1 and 3 captures
//! (~3 h) in year 2. Simulating 11 hours of traffic is cheap but bulky, so
//! scenarios carry a `scale` knob: at scale 1.0 every capture lasts its
//! paper-proportional duration scaled down to a default of minutes; the
//! bench harness raises it for longer runs.

use crate::attacker::AttackSpec;
use serde::{Deserialize, Serialize};
use uncharted_nettap::pcap::Capture;

/// Which capture year.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Year {
    /// First capture year (49 outstations, 5 captures, ~8 h).
    Y1,
    /// Second capture year, one year later (51 outstations, 3 captures, ~3 h).
    Y2,
}

impl Year {
    /// Paper label.
    pub fn label(self) -> &'static str {
        match self {
            Year::Y1 => "Y1",
            Year::Y2 => "Y2",
        }
    }
}

/// One tap window: the tap records `[start, start + duration)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CaptureWindow {
    /// Window start, seconds of simulation time.
    pub start: f64,
    /// Window length, seconds.
    pub duration: f64,
}

/// A full campaign description.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scenario {
    /// Which year's topology is active.
    pub year: Year,
    /// RNG seed — equal seeds give byte-identical captures.
    pub seed: u64,
    /// Simulation time before the first window (lets long-lived connections
    /// predate the capture, as in the real network).
    pub warmup_s: f64,
    /// Gap between consecutive capture windows (captures were taken on
    /// different days; the simulation keeps running in between).
    pub gap_s: f64,
    /// The tap windows.
    pub windows: Vec<CaptureWindow>,
    /// Script the §6.4 physical events (unmet load, generator online).
    pub physical_events: bool,
    /// Optional Industroyer-style attack campaign (for the IDS extension).
    pub attack: Option<AttackSpec>,
    /// Include the co-tenant industrial traffic the paper's tap saw (ICCP
    /// between SCADA centres, C37.118 from PMUs). The IEC 104 pipeline must
    /// ignore it; the TCP flow census sees it.
    pub background_traffic: bool,
}

impl Scenario {
    /// The Year-1 campaign: five windows, paper-proportional durations.
    /// `scale` = seconds of capture per paper-hour (default 450 → ~1 h of
    /// simulated capture in total).
    pub fn y1(seed: u64) -> Scenario {
        Scenario::y1_scaled(seed, 450.0)
    }

    /// Year-1 campaign with an explicit scale.
    pub fn y1_scaled(seed: u64, secs_per_paper_hour: f64) -> Scenario {
        // 5 captures totalling ~8 paper-hours: 1.6 h each.
        let dur = 1.6 * secs_per_paper_hour;
        let warmup = 120.0;
        let gap = 60.0;
        let windows = (0..5)
            .map(|i| CaptureWindow {
                start: warmup + i as f64 * (dur + gap),
                duration: dur,
            })
            .collect();
        Scenario {
            year: Year::Y1,
            seed,
            warmup_s: warmup,
            gap_s: gap,
            windows,
            physical_events: true,
            attack: None,
            background_traffic: true,
        }
    }

    /// The Year-2 campaign: three windows totalling ~3 paper-hours.
    pub fn y2(seed: u64) -> Scenario {
        Scenario::y2_scaled(seed, 450.0)
    }

    /// Year-2 campaign with an explicit scale.
    pub fn y2_scaled(seed: u64, secs_per_paper_hour: f64) -> Scenario {
        let dur = 1.0 * secs_per_paper_hour;
        let warmup = 120.0;
        let gap = 60.0;
        let windows = (0..3)
            .map(|i| CaptureWindow {
                start: warmup + i as f64 * (dur + gap),
                duration: dur,
            })
            .collect();
        Scenario {
            year: Year::Y2,
            seed,
            warmup_s: warmup,
            gap_s: gap,
            windows,
            physical_events: true,
            attack: None,
            background_traffic: true,
        }
    }

    /// A small single-window scenario for tests and examples.
    pub fn small(year: Year, seed: u64, duration: f64) -> Scenario {
        Scenario {
            year,
            seed,
            warmup_s: 60.0,
            gap_s: 0.0,
            windows: vec![CaptureWindow {
                start: 60.0,
                duration,
            }],
            physical_events: true,
            attack: None,
            background_traffic: true,
        }
    }

    /// Add an Industroyer-style attack campaign starting at the given
    /// fraction of the first capture window (builder style).
    pub fn with_attack(mut self, window_fraction: f64, targets: usize) -> Scenario {
        let at = self
            .windows
            .first()
            .map(|w| w.start + w.duration * window_fraction.clamp(0.0, 1.0))
            .unwrap_or(0.0);
        self.attack = Some(AttackSpec::new(at, targets));
        self
    }

    /// Total simulated time (warmup + windows + gaps).
    pub fn total_time(&self) -> f64 {
        self.windows
            .last()
            .map(|w| w.start + w.duration)
            .unwrap_or(self.warmup_s)
    }
}

/// The result of running a scenario: one pcap-equivalent capture per window.
#[derive(Debug, Clone)]
pub struct CaptureSet {
    /// The year simulated.
    pub year: Year,
    /// The seed used.
    pub seed: u64,
    /// One capture per window, in order.
    pub captures: Vec<Capture>,
}

impl CaptureSet {
    /// All captures merged into one (keeps per-window boundaries out of
    /// flow analysis when that is what an experiment needs).
    pub fn merged(&self) -> Capture {
        let mut all = Capture::new();
        for c in &self.captures {
            all.merge(c.clone());
        }
        all
    }

    /// Total packets across windows.
    pub fn total_packets(&self) -> usize {
        self.captures.iter().map(|c| c.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn y1_has_five_windows_y2_three() {
        assert_eq!(Scenario::y1(1).windows.len(), 5);
        assert_eq!(Scenario::y2(1).windows.len(), 3);
    }

    #[test]
    fn paper_proportions() {
        let y1 = Scenario::y1(1);
        let y2 = Scenario::y2(1);
        let y1_total: f64 = y1.windows.iter().map(|w| w.duration).sum();
        let y2_total: f64 = y2.windows.iter().map(|w| w.duration).sum();
        // 8 h vs 3 h in the paper.
        assert!((y1_total / y2_total - 8.0 / 3.0).abs() < 0.01);
    }

    #[test]
    fn windows_do_not_overlap() {
        for scenario in [Scenario::y1(1), Scenario::y2(1)] {
            for pair in scenario.windows.windows(2) {
                assert!(pair[0].start + pair[0].duration <= pair[1].start);
            }
        }
    }

    #[test]
    fn total_time_covers_last_window() {
        let s = Scenario::small(Year::Y1, 1, 120.0);
        assert_eq!(s.total_time(), 180.0);
    }
}
