//! Control server behaviour: connection management for primary and
//! secondary channels, interrogation on STARTDT, keep-alive probing,
//! reconnect-with-backoff, clock synchronisation and AGC set point
//! delivery.

use crate::endpoint::{Iec104Link, LinkFate};
use crate::topology::{ServerId, IEC104_PORT};
use rand::rngs::StdRng;
use rand::Rng;
use uncharted_iec104::asdu::{Asdu, InfoObject, IoValue};
use uncharted_iec104::conn::{ConnConfig, DtState, Role};
use uncharted_iec104::cot::{Cause, Cot};
use uncharted_iec104::dialect::Dialect;
use uncharted_iec104::elements::{Cp56Time2a, Qoi};
use uncharted_iec104::types::TypeId;
use uncharted_nettap::stack::{Segment, SocketAddr, TcpEndpoint};

/// Which channel a connection is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnRole {
    /// Carries I-format data (STARTDT + interrogation on connect).
    Primary,
    /// Keep-alive-only redundant channel.
    Secondary,
    /// Parked: no connection is attempted (the inactive server of a
    /// between-capture swap).
    Idle,
}

/// A server's relationship to one outstation.
#[derive(Debug)]
pub struct Assignment {
    /// The outstation number (`O{id}`).
    pub outstation_id: usize,
    /// The outstation's listening address.
    pub remote: SocketAddr,
    /// Primary or secondary channel.
    pub role: ConnRole,
    /// Wire dialect (the vendor configuration for this RTU).
    pub dialect: Dialect,
    /// Keep-alive interval override (the O30 misconfiguration / the O22
    /// testing cadence).
    pub t3_override: Option<f64>,
    /// Earliest time to dial.
    pub next_attempt: f64,
    /// Base reconnect delay after a failure \[s\].
    pub retry_delay: f64,
    link: Option<Iec104Link>,
    established_seen: bool,
    interrogated: bool,
    /// Last AGC set point sent \[MW\] (suppresses no-op commands).
    pub last_setpoint: Option<f64>,
    clock_sync_due: f64,
}

impl Assignment {
    /// Whether a usable primary data channel is up.
    pub fn primary_started(&self) -> bool {
        self.role == ConnRole::Primary
            && self
                .link
                .as_ref()
                .map(|l| l.iec.dt_state() == DtState::Started)
                .unwrap_or(false)
    }

    /// True while any TCP connection exists.
    pub fn connected(&self) -> bool {
        self.link.is_some()
    }
}

/// A simulated control server.
#[derive(Debug)]
pub struct ServerSim {
    /// Identity (C1–C4).
    pub id: ServerId,
    ip: u32,
    next_port: u16,
    isn: u32,
    /// All outstation relationships.
    pub assignments: Vec<Assignment>,
    /// Demoted connections finishing their FIN handshake. Without this the
    /// peer would hang in LAST-ACK forever (and its IEC state machine would
    /// keep believing the data channel is up).
    draining: Vec<Iec104Link>,
    /// Whether this server issues clock-sync commands (C1 and C3 do, which
    /// keeps the `I103`-transmitting station count small, as in Table 8).
    pub clock_sync_master: bool,
}

impl ServerSim {
    /// A new server with no assignments.
    pub fn new(id: ServerId) -> ServerSim {
        let base_port = 40_000
            + match id {
                ServerId::C1 => 0,
                ServerId::C2 => 5_000,
                ServerId::C3 => 10_000,
                ServerId::C4 => 15_000,
            };
        ServerSim {
            id,
            ip: id.ip(),
            next_port: base_port,
            isn: 7_000 + base_port as u32,
            assignments: Vec::new(),
            draining: Vec::new(),
            clock_sync_master: matches!(id, ServerId::C1 | ServerId::C3),
        }
    }

    /// Register a channel to an outstation.
    #[allow(clippy::too_many_arguments)]
    pub fn assign(
        &mut self,
        outstation_id: usize,
        remote_ip: u32,
        role: ConnRole,
        dialect: Dialect,
        t3_override: Option<f64>,
        first_attempt: f64,
        retry_delay: f64,
    ) {
        self.assignments.push(Assignment {
            outstation_id,
            remote: SocketAddr::new(remote_ip, IEC104_PORT),
            role,
            dialect,
            t3_override,
            next_attempt: first_attempt,
            retry_delay,
            link: None,
            established_seen: false,
            interrogated: false,
            last_setpoint: None,
            clock_sync_due: first_attempt + 300.0,
        });
    }

    fn alloc_port(&mut self) -> u16 {
        let p = self.next_port;
        self.next_port = if self.next_port >= 64_000 {
            40_000 + (p % 1000)
        } else {
            self.next_port + 1
        };
        p
    }

    fn alloc_isn(&mut self) -> u32 {
        self.isn = self.isn.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
        self.isn
    }

    /// Look up the assignment serving a local port.
    fn assignment_by_port_mut(&mut self, port: u16) -> Option<&mut Assignment> {
        self.assignments.iter_mut().find(|a| {
            a.link
                .as_ref()
                .map(|l| l.tcp.local().port == port)
                .unwrap_or(false)
        })
    }

    /// Promote / demote channels (switchovers, between-capture swaps).
    /// Returns segments to transmit (STARTDT on promotion, FIN on demotion).
    pub fn set_role(&mut self, outstation_id: usize, role: ConnRole, now: f64) -> Vec<Segment> {
        let mut out = Vec::new();
        let mut self_draining: Vec<Iec104Link> = Vec::new();
        for a in self
            .assignments
            .iter_mut()
            .filter(|a| a.outstation_id == outstation_id)
        {
            if a.role == role {
                continue;
            }
            a.role = role;
            a.interrogated = false;
            match role {
                ConnRole::Primary => match a.link.as_mut() {
                    Some(link) if link.established() => out.extend(link.start_dt(now)),
                    Some(_) => {}
                    None => a.next_attempt = a.next_attempt.min(now + 1.0),
                },
                ConnRole::Secondary | ConnRole::Idle => {
                    // Demotion: close the data channel (and keep the link
                    // around until the FIN handshake completes); re-dial as
                    // a backup unless parked.
                    if let Some(mut link) = a.link.take() {
                        if let Some(fin) = link.tcp.close() {
                            out.push(fin);
                        }
                        if !link.tcp.is_closed() {
                            self_draining.push(link);
                        }
                    }
                    a.established_seen = false;
                    a.next_attempt = if role == ConnRole::Idle {
                        f64::INFINITY
                    } else {
                        now + a.retry_delay
                    };
                }
            }
        }
        self.draining.extend(self_draining);
        out
    }

    /// Dial pending connections, drive timers, interrogate fresh primaries.
    pub fn poll(&mut self, now: f64, rng: &mut StdRng) -> Vec<Segment> {
        let mut out = Vec::new();
        let mut dials: Vec<usize> = Vec::new();
        for (i, a) in self.assignments.iter().enumerate() {
            if a.link.is_none() && a.role != ConnRole::Idle && now >= a.next_attempt {
                dials.push(i);
            }
        }
        for i in dials {
            let port = self.alloc_port();
            let isn = self.alloc_isn();
            let a = &mut self.assignments[i];
            let local = SocketAddr::new(self.ip, port);
            let (tcp, syn) = TcpEndpoint::connect(local, a.remote, isn);
            let mut cfg = ConnConfig {
                t3: 30.0,
                ..Default::default()
            };
            if let Some(t3) = a.t3_override {
                cfg.t3 = t3;
            }
            a.link = Some(Iec104Link::new(tcp, Role::Controlling, cfg, a.dialect, now));
            a.established_seen = false;
            a.interrogated = false;
            out.push(syn);
        }

        for a in &mut self.assignments {
            let Some(link) = a.link.as_mut() else {
                continue;
            };
            // Establishment edge: STARTDT primaries, probe secondaries.
            if link.established() && !a.established_seen {
                a.established_seen = true;
                match a.role {
                    ConnRole::Primary => out.extend(link.start_dt(now)),
                    // Secondaries probe the fresh link immediately — except
                    // where a T3 override models a misconfigured cadence
                    // (O30's 430 s gap, O22's near-silent test connection).
                    ConnRole::Secondary if a.t3_override.is_none() => {
                        out.extend(link.send_testfr(now))
                    }
                    ConnRole::Secondary | ConnRole::Idle => {}
                }
            }
            // Fresh primary in STARTDT state: general interrogation.
            if a.role == ConnRole::Primary
                && !a.interrogated
                && link.iec.dt_state() == DtState::Started
            {
                a.interrogated = true;
                let asdu =
                    Asdu::new(TypeId::C_IC_NA_1, Cot::new(Cause::Activation), 0).with_object(
                        InfoObject::new(0, IoValue::Interrogation { qoi: Qoi::STATION }),
                    );
                out.extend(link.send_asdu(asdu, now));
            }
            // Clock sync on primaries, from the designated masters.
            if self.clock_sync_master
                && a.role == ConnRole::Primary
                && link.iec.dt_state() == DtState::Started
                && now >= a.clock_sync_due
            {
                a.clock_sync_due = now + 1_200.0;
                let asdu = Asdu::new(TypeId::C_CS_NA_1, Cot::new(Cause::Activation), 0)
                    .with_object(InfoObject::new(
                        0,
                        IoValue::ClockSync {
                            time: Cp56Time2a::from_epoch_millis((now * 1000.0) as u64),
                        },
                    ));
                out.extend(link.send_asdu(asdu, now));
            }
            out.extend(link.poll(now));
            if link.fate() == LinkFate::TcpClosed {
                a.link = None;
                a.next_attempt = now + a.retry_delay * (0.75 + 0.5 * rng.random::<f64>());
            }
        }
        out
    }

    /// Handle a segment addressed to one of our ephemeral ports.
    pub fn on_segment(&mut self, seg: &Segment, now: f64, rng: &mut StdRng) -> Vec<Segment> {
        let isn = self.alloc_isn();
        let mut out = Vec::new();
        if let Some(a) = self.assignment_by_port_mut(seg.dst.port) {
            if let Some(link) = a.link.as_mut() {
                let (replies, _delivered) = link.on_segment(seg, isn, now);
                out.extend(replies);
                // Interrogation responses and measurement data land in the
                // SCADA database; the simulation does not need to store them.
                if link.fate() == LinkFate::TcpClosed {
                    a.link = None;
                    a.established_seen = false;
                    a.next_attempt = now + a.retry_delay * (0.75 + 0.5 * rng.random::<f64>());
                }
            }
            return out;
        }
        // A demoted connection finishing its close handshake.
        for link in &mut self.draining {
            if link.tcp.local().port == seg.dst.port {
                let (replies, _delivered) = link.on_segment(seg, isn, now);
                out.extend(replies);
                break;
            }
        }
        self.draining.retain(|l| !l.tcp.is_closed());
        out
    }

    /// Send an AGC set point (`I50`) to an outstation if we hold its primary
    /// channel and the command is materially different from the last one.
    pub fn send_setpoint(&mut self, outstation_id: usize, mw: f64, now: f64) -> Vec<Segment> {
        let mut out = Vec::new();
        for a in self
            .assignments
            .iter_mut()
            .filter(|a| a.outstation_id == outstation_id && a.role == ConnRole::Primary)
        {
            if let Some(prev) = a.last_setpoint {
                // Dispatch only material changes; AGC chatter below the
                // deadband stays inside the control centre.
                if (prev - mw).abs() < 4.0 {
                    continue;
                }
            }
            let Some(link) = a.link.as_mut() else {
                continue;
            };
            if link.iec.dt_state() != DtState::Started {
                continue;
            }
            a.last_setpoint = Some(mw);
            let asdu = Asdu::new(TypeId::C_SE_NC_1, Cot::new(Cause::Activation), 0).with_object(
                InfoObject::new(
                    900,
                    IoValue::FloatSetpoint {
                        value: mw as f32,
                        qos: 0,
                    },
                ),
            );
            out.extend(link.send_asdu(asdu, now));
        }
        out
    }

    /// Indices of assignments with an established primary channel (flap
    /// candidates).
    pub fn established_primaries(&self) -> Vec<usize> {
        self.assignments
            .iter()
            .enumerate()
            .filter(|(_, a)| a.primary_started())
            .map(|(i, _)| i)
            .collect()
    }

    /// Simulate a transient comms failure: abort the assignment's TCP
    /// connection (RST) and schedule a re-dial. The fresh connection will
    /// re-interrogate, which is what populates the paper's Fig. 13 "ellipse"
    /// with `I100`-bearing chains mid-capture.
    pub fn flap(&mut self, assignment_idx: usize, now: f64, rng: &mut StdRng) -> Vec<Segment> {
        let mut out = Vec::new();
        let Some(a) = self.assignments.get_mut(assignment_idx) else {
            return out;
        };
        if let Some(mut link) = a.link.take() {
            if let Some(rst) = link.abort() {
                out.push(rst);
            }
        }
        a.established_seen = false;
        a.interrogated = false;
        a.last_setpoint = None;
        a.next_attempt = now + a.retry_delay * (0.75 + 0.5 * rng.random::<f64>());
        out
    }

    /// Whether this server currently holds a started primary channel to the
    /// given outstation.
    pub fn is_primary_for(&self, outstation_id: usize) -> bool {
        self.assignments
            .iter()
            .any(|a| a.outstation_id == outstation_id && a.primary_started())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use uncharted_nettap::ipv4::addr;

    fn rtu_ip() -> u32 {
        addr(10, 1, 3, 3)
    }

    #[test]
    fn server_dials_at_first_attempt_time() {
        let mut s = ServerSim::new(ServerId::C1);
        s.assign(
            3,
            rtu_ip(),
            ConnRole::Primary,
            Dialect::STANDARD,
            None,
            10.0,
            5.0,
        );
        let mut rng = StdRng::seed_from_u64(1);
        assert!(s.poll(5.0, &mut rng).is_empty(), "before first_attempt");
        let out = s.poll(10.0, &mut rng);
        assert_eq!(out.len(), 1);
        assert!(out[0].flags.syn());
        assert_eq!(out[0].dst, SocketAddr::new(rtu_ip(), IEC104_PORT));
    }

    #[test]
    fn ports_are_unique_per_attempt() {
        let mut s = ServerSim::new(ServerId::C2);
        let mut ports = std::collections::BTreeSet::new();
        for _ in 0..100 {
            ports.insert(s.alloc_port());
        }
        assert_eq!(ports.len(), 100);
    }

    #[test]
    fn secondary_probes_with_testfr_after_establishment() {
        let mut s = ServerSim::new(ServerId::C2);
        s.assign(
            7,
            rtu_ip(),
            ConnRole::Secondary,
            Dialect::STANDARD,
            None,
            0.0,
            5.0,
        );
        let mut rng = StdRng::seed_from_u64(1);
        let syn = s.poll(0.0, &mut rng).remove(0);
        // Fake the RTU side with a bare endpoint.
        let mut rtu = TcpEndpoint::listen(
            SocketAddr::new(rtu_ip(), IEC104_PORT),
            uncharted_nettap::stack::AcceptPolicy::Accept,
        );
        let (synack, _) = rtu.on_segment(&syn, 42);
        let _ack = s.on_segment(&synack[0], 0.1, &mut rng);
        // On the next poll the server notices establishment and probes.
        let out = s.poll(0.2, &mut rng);
        let probe = out
            .iter()
            .find(|seg| !seg.payload.is_empty())
            .expect("probe");
        assert_eq!(probe.payload, vec![0x68, 0x04, 0x43, 0x00, 0x00, 0x00]);
    }

    #[test]
    fn setpoint_suppressed_without_primary() {
        let mut s = ServerSim::new(ServerId::C1);
        s.assign(
            3,
            rtu_ip(),
            ConnRole::Secondary,
            Dialect::STANDARD,
            None,
            0.0,
            5.0,
        );
        assert!(s.send_setpoint(3, 123.0, 1.0).is_empty());
        assert!(!s.is_primary_for(3));
    }

    #[test]
    fn demotion_closes_link() {
        let mut s = ServerSim::new(ServerId::C1);
        s.assign(
            3,
            rtu_ip(),
            ConnRole::Primary,
            Dialect::STANDARD,
            None,
            0.0,
            5.0,
        );
        let mut rng = StdRng::seed_from_u64(1);
        let syn = s.poll(0.0, &mut rng).remove(0);
        let mut rtu = TcpEndpoint::listen(
            SocketAddr::new(rtu_ip(), IEC104_PORT),
            uncharted_nettap::stack::AcceptPolicy::Accept,
        );
        let (synack, _) = rtu.on_segment(&syn, 42);
        s.on_segment(&synack[0], 0.1, &mut rng);
        s.poll(0.2, &mut rng);
        let out = s.set_role(3, ConnRole::Secondary, 1.0);
        assert!(out.iter().any(|seg| seg.flags.fin()), "demotion FINs");
        assert!(!s.assignments[0].connected());
    }
}
