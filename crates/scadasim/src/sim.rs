//! The top-level simulation: grid + AGC + servers + outstations + network
//! + tap, stepped on a fixed 100 ms tick.
//!
//! Segments travel with a small randomised latency; every segment is
//! recorded by the tap (Fig. 5) at delivery time, and payload segments are
//! occasionally delivered twice to reproduce the TCP-retransmission
//! artefact the paper traced in its Markov chains (repeated `U16`/`U32`
//! tokens).

use crate::attacker::AttackerSim;
use crate::background::BackgroundTraffic;
use crate::outstation::{Effect, OutstationSim};
use crate::profiles::ProfileType;
use crate::scenario::{CaptureSet, Scenario};
use crate::server::{ConnRole, ServerSim};
use crate::topology::{ServerId, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use uncharted_nettap::ethernet::MacAddr;
use uncharted_nettap::pcap::{Capture, CapturedPacket};
use uncharted_nettap::stack::Segment;
use uncharted_powergrid::agc::AgcController;
use uncharted_powergrid::dynamics::PowerGrid;
use uncharted_powergrid::events::{EventKind, EventTimeline, ScriptedEvent};
use uncharted_powergrid::model::GeneratorId;

/// Simulation tick length \[s\].
pub const TICK: f64 = 0.1;

/// Probability that a payload-bearing segment is delivered (and captured)
/// twice — the TCP retransmission artefact.
const DUP_PROB: f64 = 0.002;

/// A scheduled role change (switchovers, between-capture swaps).
#[derive(Debug, Clone, Copy)]
struct RoleAction {
    at: f64,
    server: ServerId,
    outstation_id: usize,
    role: ConnRole,
}

/// An in-flight segment.
#[derive(Debug)]
struct InFlight {
    deliver_at: f64,
    seq: u64,
    segment: Segment,
}

impl PartialEq for InFlight {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for InFlight {}
impl PartialOrd for InFlight {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for InFlight {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.deliver_at
            .partial_cmp(&other.deliver_at)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(self.seq.cmp(&other.seq))
    }
}

/// The running simulation.
pub struct Simulation {
    scenario: Scenario,
    topology: Topology,
    now: f64,
    rng: StdRng,
    grid: PowerGrid,
    agc: AgcController,
    timeline: EventTimeline,
    servers: Vec<ServerSim>,
    outstations: Vec<OutstationSim>,
    out_by_ip: HashMap<u32, usize>,
    gen_to_out: HashMap<GeneratorId, usize>,
    wire: BinaryHeap<Reverse<InFlight>>,
    wire_seq: u64,
    tap: Vec<CapturedPacket>,
    ip_ident: u16,
    role_schedule: Vec<RoleAction>,
    /// Optional Industroyer-style attacker.
    attacker: Option<AttackerSim>,
    /// Co-tenant industrial traffic (ICCP, C37.118), tap-level only.
    background: Option<BackgroundTraffic>,
    /// Next transient-failure injection time.
    next_flap: f64,
    /// Last scheduled arrival per (src, dst): enforces FIFO delivery within
    /// a flow (the simulated network does not reorder; the minimal TCP
    /// endpoints rely on that).
    last_arrival: HashMap<(u32, u16, u32, u16), f64>,
}

impl Simulation {
    /// Build a simulation for a scenario over the paper topology.
    pub fn new(scenario: Scenario) -> Simulation {
        Simulation::with_topology(scenario, Topology::paper_network())
    }

    /// Build with an explicit topology (tests use reduced ones).
    pub fn with_topology(scenario: Scenario, topology: Topology) -> Simulation {
        let rng = StdRng::seed_from_u64(scenario.seed);
        let grid = PowerGrid::new(topology.grid.clone());
        let mut sim = Simulation {
            now: 0.0,
            rng,
            grid,
            agc: AgcController::with_cycle(8.0),
            timeline: EventTimeline::default(),
            servers: ServerId::ALL.iter().map(|&id| ServerSim::new(id)).collect(),
            outstations: Vec::new(),
            out_by_ip: HashMap::new(),
            gen_to_out: HashMap::new(),
            wire: BinaryHeap::new(),
            wire_seq: 0,
            tap: Vec::new(),
            ip_ident: 0,
            role_schedule: Vec::new(),
            attacker: None,
            background: None,
            next_flap: 90.0,
            last_arrival: HashMap::new(),
            topology,
            scenario,
        };
        sim.build_endpoints();
        sim.build_schedules();
        if sim.scenario.background_traffic {
            sim.background = Some(BackgroundTraffic::paper_mix(ServerId::C1.ip(), 5, 3));
        }
        if let Some(spec) = sim.scenario.attack {
            // Go after generator RTUs: the targets with physical impact.
            let targets: Vec<u32> = sim
                .outstations
                .iter()
                .filter(|o| {
                    o.spec.generator.map(|g| g.agc_controlled).unwrap_or(false)
                        && o.spec.profile.has_primary()
                })
                .map(|o| o.spec.ip())
                .collect();
            sim.attacker = Some(AttackerSim::new(spec, &targets));
        }
        sim
    }

    fn server_mut(&mut self, id: ServerId) -> &mut ServerSim {
        let idx = ServerId::ALL.iter().position(|&s| s == id).unwrap();
        &mut self.servers[idx]
    }

    /// Which server of the pair attempts the *secondary* channel for an
    /// outstation (parity rule, with the two paper exceptions O6/O8 on C1).
    fn secondary_server(spec: &crate::topology::OutstationSpec) -> ServerId {
        if spec.id % 2 == 1 || spec.id == 6 || spec.id == 8 {
            spec.pair.0
        } else {
            spec.pair.1
        }
    }

    fn build_endpoints(&mut self) {
        let year = self.scenario.year;
        let specs: Vec<crate::topology::OutstationSpec> =
            self.topology.in_year(year).into_iter().cloned().collect();
        for spec in specs {
            let out = OutstationSim::new(&spec, year);
            self.out_by_ip.insert(spec.ip(), self.outstations.len());
            if let Some(link) = spec.generator {
                if link.agc_controlled {
                    self.gen_to_out
                        .insert(link.generator, self.outstations.len());
                }
            }
            self.outstations.push(out);

            let secondary = Self::secondary_server(&spec);
            let primary = if secondary == spec.pair.0 {
                spec.pair.1
            } else {
                spec.pair.0
            };
            // Stagger dial times so the capture does not open with a storm.
            let jitter = (spec.id as f64 * 0.37) % 5.0;

            if spec.testing_only {
                // C4–O22: one late secondary connection, huge keep-alive gap.
                let start = self
                    .scenario
                    .windows
                    .first()
                    .map(|w| w.start)
                    .unwrap_or(0.0);
                self.server_mut(ServerId::C4).assign(
                    spec.id,
                    spec.ip(),
                    ConnRole::Secondary,
                    spec.dialect,
                    Some(3_600.0),
                    start + 20.0 + jitter,
                    30.0,
                );
                continue;
            }

            if spec.profile == ProfileType::SwitchedBetweenCaptures {
                // Type 4: both servers hold an assignment; the schedule
                // swaps which one is primary in the gaps between windows.
                self.server_mut(spec.pair.0).assign(
                    spec.id,
                    spec.ip(),
                    ConnRole::Primary,
                    spec.dialect,
                    None,
                    1.0 + jitter,
                    3.0,
                );
                self.server_mut(spec.pair.1).assign(
                    spec.id,
                    spec.ip(),
                    ConnRole::Idle,
                    spec.dialect,
                    None,
                    f64::INFINITY,
                    3.0,
                );
                continue;
            }
            if spec.profile.has_primary() {
                self.server_mut(primary).assign(
                    spec.id,
                    spec.ip(),
                    ConnRole::Primary,
                    spec.dialect,
                    None,
                    1.0 + jitter,
                    3.0,
                );
            }
            if spec.profile.has_secondary_attempts() {
                self.server_mut(secondary).assign(
                    spec.id,
                    spec.ip(),
                    ConnRole::Secondary,
                    spec.dialect,
                    spec.secondary_t3_override,
                    2.5 + jitter,
                    6.0,
                );
            }
        }
    }

    fn build_schedules(&mut self) {
        let windows = self.scenario.windows.clone();
        let year = self.scenario.year;
        // Type 4: swap the (sole) primary between servers in the gaps
        // between windows — observed as "I-format to both servers" with no
        // visible transition.
        let specs: Vec<crate::topology::OutstationSpec> =
            self.topology.in_year(year).into_iter().cloned().collect();
        for spec in &specs {
            if spec.profile == ProfileType::SwitchedBetweenCaptures {
                for (i, w) in windows.iter().enumerate() {
                    let (new_primary, other) = if i % 2 == 0 {
                        (spec.pair.0, spec.pair.1)
                    } else {
                        (spec.pair.1, spec.pair.0)
                    };
                    let at = (w.start - 20.0).max(1.0);
                    self.role_schedule.push(RoleAction {
                        at,
                        server: other,
                        outstation_id: spec.id,
                        role: ConnRole::Idle,
                    });
                    self.role_schedule.push(RoleAction {
                        at: at + 2.0,
                        server: new_primary,
                        outstation_id: spec.id,
                        role: ConnRole::Primary,
                    });
                }
                // Initially: handled by the first window's action; make the
                // static assignment idle until then.
            }
            if spec.profile == ProfileType::SwitchoverObserved {
                // Mid-first-window switchover: the secondary is promoted two
                // seconds after the primary is demoted (Fig. 16).
                if let Some(w) = windows.first() {
                    // Stagger switchovers by a few percent of the window so
                    // they never slip past its end.
                    let at = w.start + w.duration * (0.45 + 0.02 * (spec.id % 5) as f64);
                    let secondary = Self::secondary_server(spec);
                    let primary = if secondary == spec.pair.0 {
                        spec.pair.1
                    } else {
                        spec.pair.0
                    };
                    self.role_schedule.push(RoleAction {
                        at,
                        server: primary,
                        outstation_id: spec.id,
                        role: ConnRole::Secondary,
                    });
                    self.role_schedule.push(RoleAction {
                        at: at + 2.0,
                        server: secondary,
                        outstation_id: spec.id,
                        role: ConnRole::Primary,
                    });
                }
            }
        }
        self.role_schedule
            .sort_by(|a, b| a.at.partial_cmp(&b.at).unwrap());

        // Physical events (§6.4): a generator-online sequence and an unmet
        // load event in the first capture window.
        if self.scenario.physical_events {
            if let Some(w) = self.scenario.windows.first() {
                // Use the S16 generator (observed through O40 on C1/C2).
                if let Some(spec) = specs.iter().find(|s| s.substation == 16) {
                    if let Some(link) = spec.generator {
                        let gen = link.generator;
                        let sync_at = w.start + w.duration * 0.15;
                        // The voltage ramp must fit the window with room for
                        // the operator delay and the power ramp after it.
                        let ramp = 60.0_f64.min(w.duration * 0.12).max(5.0);
                        self.grid.sync_ramp_s = ramp;
                        let mut tl = EventTimeline::new(vec![
                            ScriptedEvent::new(2.0, EventKind::OpenBreaker(gen)),
                            ScriptedEvent::new(sync_at, EventKind::BeginSync(gen)),
                            ScriptedEvent::new(
                                sync_at + ramp + (ramp * 0.4).max(6.0),
                                EventKind::CloseBreaker(gen, 180.0),
                            ),
                        ]);
                        std::mem::swap(&mut self.timeline, &mut tl);
                        self.timeline.merge(tl);
                    }
                }
                // Unmet load late in the window.
                let loss_at = w.start + w.duration * 0.55;
                let restore_at = w.start + w.duration * 0.85;
                self.timeline.merge(EventTimeline::new(vec![
                    ScriptedEvent::new(
                        loss_at,
                        EventKind::LoadLoss(uncharted_powergrid::model::LoadId(2)),
                    ),
                    ScriptedEvent::new(
                        restore_at,
                        EventKind::LoadRestore(uncharted_powergrid::model::LoadId(2)),
                    ),
                ]));
            }
        }
    }

    /// Run to completion and split the tap into per-window captures.
    pub fn run(mut self) -> CaptureSet {
        let total = self.scenario.total_time() + 1.0;
        let steps = (total / TICK).ceil() as usize;
        for _ in 0..steps {
            self.tick();
        }
        self.finish()
    }

    fn tick(&mut self) {
        self.now += TICK;
        let now = self.now;
        self.grid.step(TICK, &mut self.rng);
        self.timeline.apply_due(&mut self.grid, now);

        // Scheduled role changes.
        while let Some(action) = self.role_schedule.first().copied() {
            if action.at > now {
                break;
            }
            self.role_schedule.remove(0);
            let segs =
                self.server_mut(action.server)
                    .set_role(action.outstation_id, action.role, now);
            for seg in segs {
                self.transmit(seg, now);
            }
        }

        // Transient comms failures: roughly once a minute, one random
        // established primary connection drops and is re-dialled. The
        // re-connections produce in-capture STARTDT + interrogation
        // sequences (Fig. 13's ellipse) and truncated long-lived flows.
        if now >= self.next_flap {
            self.next_flap = now + 40.0 + 50.0 * self.rng.random::<f64>();
            let candidates: Vec<(usize, usize)> = self
                .servers
                .iter()
                .enumerate()
                .flat_map(|(si, s)| {
                    s.established_primaries()
                        .into_iter()
                        .map(move |ai| (si, ai))
                })
                .collect();
            if !candidates.is_empty() {
                let (si, ai) = candidates[self.rng.random_range(0..candidates.len())];
                let segs = self.servers[si].flap(ai, now, &mut self.rng);
                for seg in segs {
                    self.transmit(seg, now);
                }
            }
        }

        // AGC dispatch through the SCADA network.
        let commands = self.agc.dispatch(&self.grid, now);
        for cmd in commands {
            if let Some(&out_idx) = self.gen_to_out.get(&cmd.generator) {
                let oid = self.outstations[out_idx].spec.id;
                for s in 0..self.servers.len() {
                    let segs = self.servers[s].send_setpoint(oid, cmd.setpoint_mw, now);
                    for seg in segs {
                        self.transmit(seg, now);
                    }
                }
            }
        }

        // Co-tenant traffic goes straight to the tap.
        if let Some(bg) = self.background.as_mut() {
            let packets = bg.emit(now);
            self.tap.extend(packets);
        }

        // The attacker, if the scenario scripts one.
        if let Some(attacker) = self.attacker.as_mut() {
            let segs = attacker.poll(now);
            for seg in segs {
                self.transmit(seg, now);
            }
        }

        // Server housekeeping.
        for s in 0..self.servers.len() {
            let segs = self.servers[s].poll(now, &mut self.rng);
            for seg in segs {
                self.transmit(seg, now);
            }
        }
        // Outstation reporting.
        for o in 0..self.outstations.len() {
            let segs = self.outstations[o].poll(now, &self.grid, &mut self.rng);
            for seg in segs {
                self.transmit(seg, now);
            }
        }

        // Deliver everything due this tick.
        loop {
            match self.wire.peek() {
                Some(Reverse(f)) if f.deliver_at <= now => {}
                _ => break,
            }
            let Reverse(inflight) = self.wire.pop().unwrap();
            self.deliver(inflight);
        }
    }

    /// Queue a segment: record it at the tap and schedule delivery.
    fn transmit(&mut self, seg: Segment, now: f64) {
        let latency = 0.02 + 0.03 * self.rng.random::<f64>();
        let key = (seg.src.ip, seg.src.port, seg.dst.ip, seg.dst.port);
        let floor = self.last_arrival.get(&key).copied().unwrap_or(0.0);
        let deliver_at = (now + latency).max(floor + 1e-6);
        self.last_arrival.insert(key, deliver_at);
        self.record(&seg, deliver_at);
        self.wire_seq += 1;
        self.wire.push(Reverse(InFlight {
            deliver_at,
            seq: self.wire_seq,
            segment: seg.clone(),
        }));
        // Occasional TCP retransmission: same bytes, slightly later.
        if !seg.payload.is_empty() && self.rng.random::<f64>() < DUP_PROB {
            let dup_at = (deliver_at + 0.15).max(self.last_arrival[&key] + 1e-6);
            self.last_arrival.insert(key, dup_at);
            self.record(&seg, dup_at);
            self.wire_seq += 1;
            self.wire.push(Reverse(InFlight {
                deliver_at: dup_at,
                seq: self.wire_seq,
                segment: seg,
            }));
        }
    }

    fn record(&mut self, seg: &Segment, timestamp: f64) {
        self.ip_ident = self.ip_ident.wrapping_add(1);
        let pkt = CapturedPacket::build(
            timestamp,
            MacAddr::from_device_id(seg.src.ip),
            MacAddr::from_device_id(seg.dst.ip),
            seg.src.ip,
            seg.dst.ip,
            seg.header(),
            &seg.payload,
            self.ip_ident,
        );
        self.tap.push(pkt);
    }

    fn deliver(&mut self, inflight: InFlight) {
        let now = inflight.deliver_at;
        let seg = inflight.segment;
        let dst_ip = seg.dst.ip;
        if self.attacker.as_ref().map(|a| a.ip()) == Some(dst_ip) {
            let replies = self.attacker.as_mut().unwrap().on_segment(&seg, now);
            for r in replies {
                self.transmit(r, now);
            }
        } else if let Some(idx) = ServerId::ALL.iter().position(|s| s.ip() == dst_ip) {
            let replies = self.servers[idx].on_segment(&seg, now, &mut self.rng);
            for r in replies {
                self.transmit(r, now);
            }
        } else if let Some(&idx) = self.out_by_ip.get(&dst_ip) {
            let (replies, effects) =
                self.outstations[idx].on_segment(&seg, now, &self.grid, &mut self.rng);
            for r in replies {
                self.transmit(r, now);
            }
            for eff in effects {
                match eff {
                    Effect::ApplySetpoint(gen, mw) => self.grid.apply_setpoint(gen, mw),
                    Effect::OperateBreaker(gen, close) => {
                        if close {
                            let sp = self
                                .grid
                                .model
                                .generators
                                .get(gen.0)
                                .map(|g| g.setpoint_mw)
                                .unwrap_or(0.0);
                            self.grid.close_breaker(gen, sp);
                        } else {
                            self.grid.open_breaker(gen);
                        }
                    }
                }
            }
        }
    }

    fn finish(mut self) -> CaptureSet {
        self.tap
            .sort_by(|a, b| a.timestamp.partial_cmp(&b.timestamp).unwrap());
        let mut captures = Vec::new();
        for w in &self.scenario.windows {
            let mut cap = Capture::new();
            for pkt in &self.tap {
                if pkt.timestamp >= w.start && pkt.timestamp < w.start + w.duration {
                    cap.record(pkt.clone());
                }
            }
            captures.push(cap);
        }
        CaptureSet {
            year: self.scenario.year,
            seed: self.scenario.seed,
            captures,
        }
    }
}

/// Convenience: run a scenario on the paper topology.
pub fn run_scenario(scenario: Scenario) -> CaptureSet {
    Simulation::new(scenario).run()
}

/// Convenience: the default scaled Y1 + Y2 campaign pair.
pub fn run_both_years(seed: u64, secs_per_paper_hour: f64) -> (CaptureSet, CaptureSet) {
    let y1 = Simulation::new(Scenario::y1_scaled(seed, secs_per_paper_hour)).run();
    let y2 = Simulation::new(Scenario::y2_scaled(seed + 1, secs_per_paper_hour)).run();
    (y1, y2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Year;

    fn small_run(seed: u64) -> CaptureSet {
        Simulation::new(Scenario::small(Year::Y1, seed, 90.0)).run()
    }

    #[test]
    fn produces_traffic() {
        let set = small_run(42);
        assert_eq!(set.captures.len(), 1);
        assert!(
            set.captures[0].len() > 500,
            "expected substantial traffic, got {}",
            set.captures[0].len()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = small_run(7);
        let b = small_run(7);
        assert_eq!(a.captures[0].packets.len(), b.captures[0].packets.len());
        for (x, y) in a.captures[0].packets.iter().zip(&b.captures[0].packets) {
            assert_eq!(x.frame, y.frame);
            assert_eq!(x.timestamp, y.timestamp);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = small_run(1);
        let b = small_run(2);
        let same = a.captures[0].packets.len() == b.captures[0].packets.len()
            && a.captures[0]
                .packets
                .iter()
                .zip(&b.captures[0].packets)
                .all(|(x, y)| x.frame == y.frame);
        assert!(!same);
    }

    #[test]
    fn capture_contains_misbehaving_resets() {
        let set = small_run(3);
        let parsed = set.captures[0].parsed();
        let rsts = parsed.iter().filter(|p| p.tcp.flags.rst()).count();
        assert!(rsts > 5, "reject storm produces RSTs, got {rsts}");
    }

    #[test]
    fn capture_contains_iec104_data() {
        let set = small_run(4);
        let parsed = set.captures[0].parsed();
        let data = parsed
            .iter()
            .filter(|p| !p.payload.is_empty() && p.payload[0] == 0x68)
            .count();
        assert!(data > 200, "IEC 104 payloads expected, got {data}");
    }

    #[test]
    fn all_packets_inside_window() {
        let set = small_run(5);
        let w = &Scenario::small(Year::Y1, 5, 90.0).windows[0];
        for p in &set.captures[0].packets {
            assert!(p.timestamp >= w.start && p.timestamp < w.start + w.duration);
        }
    }
}
