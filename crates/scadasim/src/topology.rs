//! The Fig. 6 network: control servers C1–C4, substations S1–S27,
//! outstations O1–O58, and every Table 2 change between the two capture
//! years.
//!
//! The identities the paper names explicitly are honoured exactly:
//!
//! * **Legacy dialects** (§6.1): O37 uses 2-octet IOAs; O53, O58 and O28 use
//!   a 1-octet cause of transmission.
//! * **Table 2**: O50/S24 and O53/S27 are new substations in Y2; O52/S23 and
//!   O55/S26 are 101→104 upgrades; O51/O56/O57/O58 are backup RTUs first
//!   captured in Y2; O54/S25 was under maintenance in Y1;
//!   O15/O20/O22/O28/O33/O38 are redundant RTUs that no longer appear in
//!   Y2; O2/S2 lost its connection to the operator.
//! * **Misbehaviours**: the (1,1) Markov cluster connections (backups of
//!   O5–O9, O15, O24, O28, O35), the C2→O30 secondary with its T3 = 430 s
//!   outlier, and the C4→O22 testing connection that exchanged only a
//!   handful of packets.
//!
//! Everything else (IOA inventories, report cadences, which substations
//! host generators) is generated deterministically from the outstation id.

use crate::profiles::{BackupBehavior, ProfileType};
use serde::{Deserialize, Serialize};
use uncharted_iec104::dialect::Dialect;
use uncharted_powergrid::model::{Generator, GeneratorId, GridModel, Load};
use uncharted_powergrid::sensors::PhysicalQuantity;

/// The IEC 104 well-known port.
pub const IEC104_PORT: u16 = 2404;

/// A control server identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ServerId {
    /// Control server C1 (paired with C2).
    C1,
    /// Control server C2.
    C2,
    /// Control server C3 (paired with C4).
    C3,
    /// Control server C4.
    C4,
}

impl ServerId {
    /// All four servers.
    pub const ALL: [ServerId; 4] = [ServerId::C1, ServerId::C2, ServerId::C3, ServerId::C4];

    /// The paper's label (`"C1"`…).
    pub fn label(self) -> &'static str {
        match self {
            ServerId::C1 => "C1",
            ServerId::C2 => "C2",
            ServerId::C3 => "C3",
            ServerId::C4 => "C4",
        }
    }

    /// The server's IPv4 address in the simulated control-centre subnet.
    pub fn ip(self) -> u32 {
        let n = match self {
            ServerId::C1 => 1,
            ServerId::C2 => 2,
            ServerId::C3 => 3,
            ServerId::C4 => 4,
        };
        uncharted_nettap::ipv4::addr(10, 0, 0, n)
    }

    /// The redundant partner in the pair.
    pub fn partner(self) -> ServerId {
        match self {
            ServerId::C1 => ServerId::C2,
            ServerId::C2 => ServerId::C1,
            ServerId::C3 => ServerId::C4,
            ServerId::C4 => ServerId::C3,
        }
    }
}

/// How a point reports.
#[allow(missing_docs)] // fields: `period_s` cadence / `threshold` deadband
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ReportKind {
    /// Cyclic reporting (COT=periodic) as `M_ME_NC_1` (I13), every
    /// `period_s` seconds.
    PeriodicFloat { period_s: f64 },
    /// Cyclic normalized reporting as `M_ME_NA_1` (I9).
    PeriodicNormalized { period_s: f64 },
    /// Cyclic step position as `M_ST_NA_1` (I5) — transformer taps.
    PeriodicStep { period_s: f64 },
    /// Threshold-triggered time-tagged float, `M_ME_TF_1` (I36). The value
    /// is re-checked every sampling interval; a report fires when it moved
    /// more than `threshold` from the last transmitted value.
    SpontaneousFloat { threshold: f64 },
    /// Spontaneous time-tagged double point, `M_DP_TB_1` (I31) — breaker
    /// status changes.
    SpontaneousDoublePoint,
    /// Spontaneous time-tagged single point, `M_SP_TB_1` (I30).
    SpontaneousSinglePoint,
    /// Spontaneous plain single point, `M_SP_NA_1` (I1) — alarms.
    SpontaneousPlainSinglePoint,
    /// Bitstring status word, `M_BO_NA_1` (I7), sent once after STARTDT.
    BitstringOnStart,
    /// Reported only when interrogated.
    InterrogationOnly,
}

/// One field point: an IOA bound to a physical quantity with a report rule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PointSpec {
    /// Information object address.
    pub ioa: u32,
    /// The physical quantity measured.
    pub quantity: PhysicalQuantity,
    /// How it is reported.
    pub report: ReportKind,
}

/// Which generator (if any) a point set observes, plus an AGC flag.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeneratorLink {
    /// Generator in the grid model.
    pub generator: GeneratorId,
    /// Whether this outstation receives AGC set points (`I50`).
    pub agc_controlled: bool,
}

/// Complete description of one outstation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OutstationSpec {
    /// Outstation number (`O{id}`).
    pub id: usize,
    /// Substation number (`S{substation}`).
    pub substation: usize,
    /// The server pair responsible ((primary-preferring, backup)).
    pub pair: (ServerId, ServerId),
    /// Behavioural profile.
    pub profile: ProfileType,
    /// Backup-connection behaviour (usually derived from the profile, but
    /// overridable per outstation).
    pub backup: BackupBehavior,
    /// Wire dialect (standard, or a legacy variant).
    pub dialect: Dialect,
    /// IEC 104 common address.
    pub common_address: u16,
    /// The field points.
    pub points: Vec<PointSpec>,
    /// Link to a generator for AGC, if this is a generation substation RTU.
    pub generator: Option<GeneratorLink>,
    /// Present in the Year-1 captures.
    pub in_y1: bool,
    /// Present in the Year-2 captures.
    pub in_y2: bool,
    /// Override the keep-alive (T3) interval the *server* uses on its
    /// secondary connection to this outstation (the O30 misconfiguration).
    pub secondary_t3_override: Option<f64>,
    /// Marks the C4–O22 "being tested, not operational" RTU.
    pub testing_only: bool,
    /// How many IOAs this outstation reports in Y2 relative to Y1
    /// (Fig. 6's up/down arrows). Positive = more points in Y2.
    pub y2_point_delta: i32,
}

impl OutstationSpec {
    /// The outstation's IPv4 address: `10.1.<substation>.<id>`.
    pub fn ip(&self) -> u32 {
        uncharted_nettap::ipv4::addr(10, 1, self.substation as u8, self.id as u8)
    }

    /// The paper's label (`"O7"`…).
    pub fn label(&self) -> String {
        format!("O{}", self.id)
    }

    /// The point set active in the given year (applies `y2_point_delta`).
    pub fn points_in_year(&self, year: crate::scenario::Year) -> Vec<PointSpec> {
        match year {
            crate::scenario::Year::Y1 => self.points.clone(),
            crate::scenario::Year::Y2 => {
                let mut pts = self.points.clone();
                if self.y2_point_delta >= 0 {
                    let base = pts.len() as u32;
                    for k in 0..self.y2_point_delta as u32 {
                        pts.push(PointSpec {
                            ioa: 700 + base + k,
                            quantity: PhysicalQuantity::Voltage,
                            report: ReportKind::SpontaneousFloat { threshold: 0.4 },
                        });
                    }
                } else {
                    let keep = pts.len().saturating_sub((-self.y2_point_delta) as usize);
                    pts.truncate(keep.max(1));
                }
                pts
            }
        }
    }
}

/// The whole network description.
#[derive(Debug, Clone)]
pub struct Topology {
    /// Every outstation ever observed (both years).
    pub outstations: Vec<OutstationSpec>,
    /// The power grid model behind the SCADA network.
    pub grid: GridModel,
}

/// Substations that carry no generator (auxiliary network measurements) —
/// S2 is named by the paper as a non-generation substation.
const AUX_SUBSTATIONS: [usize; 3] = [2, 8, 18];

/// Outstation → substation assignment. `S10` hosts 14 RTUs (the paper's
/// "newer substation" example with redundant RTU pairs).
fn substation_of(o: usize) -> usize {
    match o {
        1 => 1,
        2 => 2,
        3 | 4 => 3,
        5 | 6 => 4,
        7 | 8 => 5,
        9 | 15 => 6,
        12 | 13 => 7,
        14 => 8,
        28 | 29 => 9,
        10 | 11 | 16..=23 | 25..=27 | 48 => 10, // the 14-RTU substation
        30 | 31 => 11,
        32 | 33 => 12,
        24 | 34 | 35 => 13,
        36 | 37 => 14,
        38 | 39 => 15,
        40 => 16,
        41 | 42 => 17,
        43 => 18,
        44 => 19,
        45 => 20,
        46 => 21,
        47 | 49 => 22,
        52 => 23,
        50 => 24,
        54 => 25,
        55 => 26,
        53 => 27,
        51 => 9,  // Y2 backup RTU replacing O28
        56 => 12, // Y2 backup replacing O33
        57 => 15, // Y2 backup replacing O38
        58 => 10, // Y2 backup replacing O20/O22
        _ => unreachable!("outstation {o} out of range"),
    }
}

/// Which server pair serves a substation: S10 and S14–S18 run on C3/C4, the
/// rest on C1/C2 (matches the paper's pairings: O10/O20 on C3/C4;
/// O5–O9, O24, O28–O30, O35 on C1/C2).
fn pair_of(substation: usize) -> (ServerId, ServerId) {
    if substation == 10 || (14..=18).contains(&substation) {
        (ServerId::C3, ServerId::C4)
    } else {
        (ServerId::C1, ServerId::C2)
    }
}

/// Outstations the paper saw only in Y1.
const REMOVED_IN_Y2: [usize; 7] = [2, 15, 20, 22, 28, 33, 38];
/// Outstations the paper saw only in Y2.
const ADDED_IN_Y2: [usize; 9] = [50, 51, 52, 53, 54, 55, 56, 57, 58];

/// Backup RTUs whose misbehaving connections form the (1,1) Markov cluster.
/// (O28 and O35 also belong to the cluster but keep primary connections or a
/// FIN-flavoured reject; they are special-cased below.)
const RESETTING_BACKUPS: [usize; 5] = [6, 7, 9, 15, 24];

/// Pure backup RTUs (Table 6 type 3): the redundant units of S10 and the
/// second units of two-RTU substations. O58 is a Y2 backup per Table 2 but
/// must emit (legacy-dialect) I-frames for the §6.1 compliance census, so it
/// keeps a primary connection here.
const BACKUP_RTUS: [usize; 16] = [
    4, 11, 13, 17, 19, 21, 23, 25, 27, 31, 39, 42, 48, 51, 56, 57,
];

/// Outstations that switched servers between captures (type 4).
const SWITCHED_BETWEEN: [usize; 5] = [16, 29, 41, 47, 49];

/// Outstations with an observable in-capture switchover (type 8). O36 is
/// included so its bitstring status word (`I7`, sent on STARTDT) lands
/// inside a capture window deterministically.
const SWITCHOVER_OBSERVED: [usize; 3] = [20, 26, 36];

/// Primary-only outstations (type 1).
const PRIMARY_ONLY: [usize; 5] = [1, 2, 14, 40, 43];

impl Topology {
    /// Build the full paper network.
    pub fn paper_network() -> Topology {
        let mut outstations = Vec::new();
        let mut generators = Vec::new();
        let mut gen_of_substation = std::collections::HashMap::new();

        // One generator per generation substation, sized deterministically.
        for s in 1..=27 {
            if AUX_SUBSTATIONS.contains(&s) {
                continue;
            }
            let capacity = 200.0 + (s as f64 * 37.0) % 600.0;
            let output = capacity * 0.65;
            let gen = if s == 25 {
                // S25 was under maintenance in Y1: start offline.
                Generator::offline(&format!("S{s}-gen"), capacity)
            } else {
                Generator::online(&format!("S{s}-gen"), capacity, output)
            };
            gen_of_substation.insert(s, GeneratorId(generators.len()));
            generators.push(gen);
        }
        let total: f64 = generators.iter().map(|g| g.output_mw).sum();
        let loads = vec![
            Load {
                name: "area-north".into(),
                base_mw: total * 0.45,
                connected: true,
            },
            Load {
                name: "area-south".into(),
                base_mw: total * 0.45,
                connected: true,
            },
            Load {
                name: "area-industrial".into(),
                base_mw: total * 0.10,
                connected: true,
            },
        ];
        let grid = GridModel::new(60.0, generators, loads);

        for o in 1..=58usize {
            let substation = substation_of(o);
            let pair = pair_of(substation);
            let in_y2 = !REMOVED_IN_Y2.contains(&o);
            let in_y1 = !ADDED_IN_Y2.contains(&o);

            let profile = if RESETTING_BACKUPS.contains(&o) {
                ProfileType::ResettingBackup
            } else if o == 5 || o == 8 {
                ProfileType::HalfDeafBackup
            } else if o == 45 {
                ProfileType::SpontaneousStale
            } else if SWITCHOVER_OBSERVED.contains(&o) {
                ProfileType::SwitchoverObserved
            } else if SWITCHED_BETWEEN.contains(&o) {
                ProfileType::SwitchedBetweenCaptures
            } else if BACKUP_RTUS.contains(&o) || o == 22 {
                ProfileType::BackupRtu
            } else if PRIMARY_ONLY.contains(&o) {
                ProfileType::PrimaryOnly
            } else {
                ProfileType::Ideal
            };

            // Dialect quirks the paper found (§6.1).
            let dialect = match o {
                37 => Dialect::LEGACY_IOA,
                28 | 53 | 58 => Dialect::LEGACY_COT,
                _ => Dialect::STANDARD,
            };

            // A couple of the misbehaving backups use the FIN flavour the
            // paper also observed; the rest RST.
            let backup = if o == 35 {
                BackupBehavior::AcceptThenFin
            } else if o == 30 {
                BackupBehavior::IgnoreTestFr
            } else if o == 28 {
                // O28 keeps a (legacy-COT) primary but resets the backup:
                // C2-O28 sits in the paper's (1,1) cluster.
                BackupBehavior::RejectApdu
            } else {
                profile.backup_behavior()
            };
            // O35 is a resetting backup via FIN (not in RESETTING_BACKUPS to
            // keep its own profile row honest).
            let profile = if o == 35 {
                ProfileType::ResettingBackup
            } else {
                profile
            };

            let generator = gen_of_substation.get(&substation).map(|&g| GeneratorLink {
                generator: g,
                // AGC regulation is carried by a subset of the fleet (the
                // units on regulation duty), through the substation's
                // primary-capable RTU.
                agc_controlled: profile.has_primary()
                    && !matches!(profile, ProfileType::BackupRtu)
                    && substation % 5 == 1,
            });

            let points = build_points(o, profile, generator);
            // Fig. 6 arrows: ~1 in 4 outstations keeps the same IOA count.
            let y2_point_delta = match o % 4 {
                0 => 0,
                1 => 2 + (o as i32 % 3),
                2 => -(1 + (o as i32 % 2)),
                _ => 1,
            };

            outstations.push(OutstationSpec {
                id: o,
                substation,
                pair,
                profile,
                backup,
                dialect,
                common_address: o as u16,
                points,
                generator,
                in_y1,
                in_y2,
                secondary_t3_override: if o == 30 { Some(430.0) } else { None },
                testing_only: o == 22,
                y2_point_delta,
            });
        }

        Topology { outstations, grid }
    }

    /// Outstations present in a given year.
    pub fn in_year(&self, year: crate::scenario::Year) -> Vec<&OutstationSpec> {
        self.outstations
            .iter()
            .filter(|o| match year {
                crate::scenario::Year::Y1 => o.in_y1,
                crate::scenario::Year::Y2 => o.in_y2,
            })
            .collect()
    }

    /// Look up a spec by outstation number.
    pub fn outstation(&self, id: usize) -> Option<&OutstationSpec> {
        self.outstations.iter().find(|o| o.id == id)
    }

    /// The Table 2 rows: `(labels, added?, reason)`.
    pub fn table2() -> Vec<(&'static str, &'static str, &'static str)> {
        vec![
            ("O50, O53", "Added", "New substations"),
            ("O52, O55", "Added", "Updated from 101 to 104"),
            ("O51, O56, O57, O58", "Added", "Backup RTU"),
            ("O54", "Added", "Under Maintenance in year 1"),
            (
                "O15, O20, O22, O28, O33, O38",
                "Removed",
                "Redundant RTU in operation",
            ),
            ("O2", "Removed", "Substation without supervision"),
        ]
    }
}

/// Deterministic point inventory for an outstation.
fn build_points(
    o: usize,
    profile: ProfileType,
    generator: Option<GeneratorLink>,
) -> Vec<PointSpec> {
    let mut points = Vec::new();
    if matches!(
        profile,
        ProfileType::BackupRtu | ProfileType::ResettingBackup
    ) {
        // Pure backups hold the same points but never report them (they send
        // no I-frames); keep a couple for interrogation completeness.
        points.push(PointSpec {
            ioa: 700,
            quantity: PhysicalQuantity::Voltage,
            report: ReportKind::InterrogationOnly,
        });
        points.push(PointSpec {
            ioa: 701,
            quantity: PhysicalQuantity::BreakerStatus,
            report: ReportKind::InterrogationOnly,
        });
        return points;
    }

    let n_analog = 4 + (o * 7) % 12; // 4..15 analog points
    let spontaneous_threshold = if profile == ProfileType::SpontaneousStale {
        // Type 5: oversized thresholds -> sparse data (>20 s gaps force T3
        // keep-alives mid-stream) and the stale values the operator
        // complained about.
        12.0
    } else {
        0.35
    };
    for k in 0..n_analog {
        let ioa = 700 + k as u32;
        let quantity = match k % 5 {
            0 => PhysicalQuantity::ActivePower,
            1 => PhysicalQuantity::ReactivePower,
            2 => PhysicalQuantity::Voltage,
            3 => PhysicalQuantity::Current,
            _ => PhysicalQuantity::Frequency,
        };
        // Spontaneous I36 dominates (matching Table 7's 65 %), periodic I13
        // second (32 %); the cadences are per-outstation deterministic.
        let report = if profile == ProfileType::SpontaneousStale {
            ReportKind::SpontaneousFloat {
                threshold: spontaneous_threshold,
            }
        } else if k % 3 == 2 {
            ReportKind::PeriodicFloat {
                period_s: 4.0 + (o % 5) as f64,
            }
        } else {
            ReportKind::SpontaneousFloat {
                threshold: spontaneous_threshold,
            }
        };
        points.push(PointSpec {
            ioa,
            quantity,
            report,
        });
    }

    // Status points: breaker double point, plus an alarm single point.
    points.push(PointSpec {
        ioa: 800,
        quantity: PhysicalQuantity::BreakerStatus,
        report: ReportKind::SpontaneousDoublePoint,
    });
    if o % 6 == 1 {
        points.push(PointSpec {
            ioa: 801,
            quantity: PhysicalQuantity::BreakerStatus,
            report: ReportKind::SpontaneousPlainSinglePoint,
        });
    }
    if o % 9 == 2 {
        points.push(PointSpec {
            ioa: 802,
            quantity: PhysicalQuantity::BreakerStatus,
            report: ReportKind::SpontaneousSinglePoint,
        });
    }
    // One station reports normalized values (I9), one step positions (I5),
    // one a bitstring status word (I7).
    if o == 12 {
        points.push(PointSpec {
            ioa: 810,
            quantity: PhysicalQuantity::Voltage,
            report: ReportKind::PeriodicNormalized { period_s: 3.0 },
        });
    }
    if o == 34 {
        points.push(PointSpec {
            ioa: 811,
            quantity: PhysicalQuantity::Voltage,
            report: ReportKind::PeriodicStep { period_s: 8.0 },
        });
    }
    if o == 36 {
        points.push(PointSpec {
            ioa: 812,
            quantity: PhysicalQuantity::BreakerStatus,
            report: ReportKind::BitstringOnStart,
        });
    }
    // AGC-controlled generators expose a set point feedback IOA.
    if let Some(link) = generator {
        if link.agc_controlled {
            points.push(PointSpec {
                ioa: 900,
                quantity: PhysicalQuantity::AgcSetpoint,
                report: ReportKind::InterrogationOnly,
            });
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Year;

    #[test]
    fn network_has_58_outstations_and_27_substations() {
        let t = Topology::paper_network();
        assert_eq!(t.outstations.len(), 58);
        let subs: std::collections::BTreeSet<usize> =
            t.outstations.iter().map(|o| o.substation).collect();
        assert_eq!(subs.len(), 27);
        assert_eq!(*subs.iter().max().unwrap(), 27);
    }

    #[test]
    fn year_membership_matches_table2() {
        let t = Topology::paper_network();
        let y1: Vec<usize> = t.in_year(Year::Y1).iter().map(|o| o.id).collect();
        let y2: Vec<usize> = t.in_year(Year::Y2).iter().map(|o| o.id).collect();
        assert_eq!(y1.len(), 49);
        assert_eq!(y2.len(), 51);
        for o in REMOVED_IN_Y2 {
            assert!(y1.contains(&o) && !y2.contains(&o), "O{o} removed in Y2");
        }
        for o in ADDED_IN_Y2 {
            assert!(!y1.contains(&o) && y2.contains(&o), "O{o} added in Y2");
        }
    }

    #[test]
    fn paper_named_dialects() {
        let t = Topology::paper_network();
        assert_eq!(t.outstation(37).unwrap().dialect, Dialect::LEGACY_IOA);
        for o in [28, 53, 58] {
            assert_eq!(
                t.outstation(o).unwrap().dialect,
                Dialect::LEGACY_COT,
                "O{o}"
            );
        }
        assert_eq!(t.outstation(36).unwrap().dialect, Dialect::STANDARD);
    }

    #[test]
    fn o30_t3_outlier_and_o22_testing() {
        let t = Topology::paper_network();
        assert_eq!(t.outstation(30).unwrap().secondary_t3_override, Some(430.0));
        assert!(t.outstation(22).unwrap().testing_only);
        assert_eq!(
            t.outstation(30).unwrap().backup,
            BackupBehavior::IgnoreTestFr
        );
    }

    #[test]
    fn s10_hosts_fourteen_rtus() {
        let t = Topology::paper_network();
        let count = t.outstations.iter().filter(|o| o.substation == 10).count();
        assert_eq!(count, 15, "14 original RTUs plus the Y2 backup O58");
        let y1_count = t
            .outstations
            .iter()
            .filter(|o| o.substation == 10 && o.in_y1)
            .count();
        assert_eq!(y1_count, 14);
    }

    #[test]
    fn server_pairs_match_paper_examples() {
        let t = Topology::paper_network();
        // O10 and O20 talk to C3/C4; O29/O30 to C1/C2.
        assert_eq!(t.outstation(10).unwrap().pair, (ServerId::C3, ServerId::C4));
        assert_eq!(t.outstation(20).unwrap().pair, (ServerId::C3, ServerId::C4));
        assert_eq!(t.outstation(29).unwrap().pair, (ServerId::C1, ServerId::C2));
        assert_eq!(t.outstation(30).unwrap().pair, (ServerId::C1, ServerId::C2));
    }

    #[test]
    fn misbehaving_backups_assigned() {
        let t = Topology::paper_network();
        for o in RESETTING_BACKUPS {
            assert_eq!(
                t.outstation(o).unwrap().backup,
                BackupBehavior::RejectApdu,
                "O{o}"
            );
        }
        // O28 resets its backup while keeping a legacy-dialect primary.
        assert_eq!(t.outstation(28).unwrap().backup, BackupBehavior::RejectApdu);
        assert!(t.outstation(28).unwrap().profile.has_primary());
        assert!(t.outstation(58).unwrap().profile.has_primary());
        assert_eq!(
            t.outstation(35).unwrap().backup,
            BackupBehavior::AcceptThenFin
        );
        for o in [5, 8] {
            assert_eq!(
                t.outstation(o).unwrap().profile,
                ProfileType::HalfDeafBackup
            );
        }
    }

    #[test]
    fn type5_has_oversized_thresholds() {
        let t = Topology::paper_network();
        let o45 = t.outstation(45).unwrap();
        assert_eq!(o45.profile, ProfileType::SpontaneousStale);
        let big = o45.points.iter().any(
            |p| matches!(p.report, ReportKind::SpontaneousFloat { threshold } if threshold > 10.0),
        );
        assert!(big);
    }

    #[test]
    fn generation_substations_have_agc_links() {
        let t = Topology::paper_network();
        let agc_count = t
            .outstations
            .iter()
            .filter(|o| o.generator.map(|g| g.agc_controlled).unwrap_or(false))
            .count();
        // The regulation fleet is a subset of the generation fleet (the
        // paper's Table 8 shows only four stations receiving I50 in Y1).
        assert!(
            (3..=8).contains(&agc_count),
            "regulation fleet size: {agc_count}"
        );
        // S2 is auxiliary: no generator.
        assert!(t.outstation(2).unwrap().generator.is_none());
    }

    #[test]
    fn y2_point_deltas_keep_a_quarter_stable() {
        let t = Topology::paper_network();
        let stable = t
            .outstations
            .iter()
            .filter(|o| o.in_y1 && o.in_y2 && o.y2_point_delta == 0)
            .count();
        let both: usize = t.outstations.iter().filter(|o| o.in_y1 && o.in_y2).count();
        let frac = stable as f64 / both as f64;
        assert!((0.15..=0.40).contains(&frac), "fraction stable {frac}");
    }

    #[test]
    fn point_years_apply_delta() {
        let t = Topology::paper_network();
        let o = t.outstation(1).unwrap(); // delta = 2 + 1%3 = 3
        let y1 = o.points_in_year(Year::Y1).len();
        let y2 = o.points_in_year(Year::Y2).len();
        assert_eq!(y2 as i32 - y1 as i32, o.y2_point_delta);
    }

    #[test]
    fn addresses_are_unique() {
        let t = Topology::paper_network();
        let mut ips: Vec<u32> = t.outstations.iter().map(|o| o.ip()).collect();
        ips.sort_unstable();
        ips.dedup();
        assert_eq!(ips.len(), 58);
    }
}
