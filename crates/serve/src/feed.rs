//! The feed client: ship a capture to a running `uncharted serve` as a
//! pcap-over-TCP stream, optionally paced to a packet rate.
//!
//! The wire format is exactly the capture file's bytes — global header
//! then records — so `uncharted feed` and `cat capture.pcap | nc host
//! port` are interchangeable. The client validates the capture before
//! connecting (a truncated file would get the *server* to quarantine the
//! source; better to fail at the sender) and half-closes the socket when
//! done so the server sees a clean end of stream.

use std::io::{self, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::path::Path;
use std::thread;
use std::time::{Duration, Instant};
use uncharted_nettap::pcap::PCAP_MAGIC;

/// What a completed feed shipped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeedStats {
    /// Pcap records sent.
    pub records: u64,
    /// Total bytes sent, global header included.
    pub bytes: u64,
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Validate a classic libpcap byte buffer and return each record's byte
/// range (header included), rejecting truncation and bad magic.
fn index_records(bytes: &[u8]) -> io::Result<Vec<(usize, usize)>> {
    if bytes.len() < 24 {
        return Err(invalid(format!(
            "capture is {} bytes, shorter than a pcap global header",
            bytes.len()
        )));
    }
    let magic = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    if magic != PCAP_MAGIC {
        return Err(invalid(format!("bad pcap magic {magic:#010x}")));
    }
    let mut ranges = Vec::new();
    let mut off = 24usize;
    while off < bytes.len() {
        if bytes.len() - off < 16 {
            return Err(invalid(format!("truncated record header at byte {off}")));
        }
        let incl = u32::from_le_bytes([
            bytes[off + 8],
            bytes[off + 9],
            bytes[off + 10],
            bytes[off + 11],
        ]) as usize;
        if bytes.len() - off - 16 < incl {
            return Err(invalid(format!(
                "record at byte {off} promises {incl} bytes past end of capture"
            )));
        }
        ranges.push((off, off + 16 + incl));
        off += 16 + incl;
    }
    Ok(ranges)
}

/// Feed an in-memory capture to `addr`. With `rate_pps`, records are paced
/// so record *i* is sent no earlier than `i / rate_pps` seconds in —
/// steady-state throttling without drift, not inter-packet gaps.
pub fn feed_bytes(
    bytes: &[u8],
    addr: impl ToSocketAddrs,
    rate_pps: Option<f64>,
) -> io::Result<FeedStats> {
    let ranges = index_records(bytes)?;
    let mut stream = TcpStream::connect(addr)?;
    let _ = stream.set_nodelay(true);
    stream.write_all(&bytes[..24])?;
    match rate_pps {
        None => stream.write_all(&bytes[24..])?,
        Some(pps) => {
            let start = Instant::now();
            for (i, (lo, hi)) in ranges.iter().enumerate() {
                let due = Duration::from_secs_f64(i as f64 / pps);
                if let Some(wait) = due.checked_sub(start.elapsed()) {
                    thread::sleep(wait);
                }
                stream.write_all(&bytes[*lo..*hi])?;
            }
        }
    }
    stream.flush()?;
    // Half-close: the server reads a clean EOF (drain, not quarantine).
    let _ = stream.shutdown(Shutdown::Write);
    Ok(FeedStats {
        records: ranges.len() as u64,
        bytes: bytes.len() as u64,
    })
}

/// Feed a capture file to `addr`; see [`feed_bytes`].
pub fn feed_path(
    path: impl AsRef<Path>,
    addr: impl ToSocketAddrs,
    rate_pps: Option<f64>,
) -> io::Result<FeedStats> {
    let bytes = std::fs::read(path.as_ref())?;
    feed_bytes(&bytes, addr, rate_pps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_rejects_garbage() {
        assert!(index_records(&[0u8; 10]).is_err());
        assert!(index_records(&[0u8; 24]).is_err()); // bad magic
        let mut buf = Vec::new();
        buf.extend_from_slice(&PCAP_MAGIC.to_le_bytes());
        buf.extend_from_slice(&[0u8; 20]);
        assert!(index_records(&buf).unwrap().is_empty());
        // A record header promising bytes past the end.
        buf.extend_from_slice(&[0u8; 8]);
        buf.extend_from_slice(&100u32.to_le_bytes());
        buf.extend_from_slice(&100u32.to_le_bytes());
        assert!(index_records(&buf).is_err());
    }
}
