//! Minimal HTTP/1.1 responder for the observability endpoint.
//!
//! Three read-only routes, every response `Connection: close`:
//!
//! * `GET /metrics`  — Prometheus text: service registry merged with each
//!   source's pipeline registry relabelled by source id.
//! * `GET /healthz`  — liveness, `ok`.
//! * `GET /sources`  — JSON array of per-source summaries.
//!
//! Deliberately not a web server: requests are parsed to the first line
//! only, bodies are ignored, and the listener shares the serve poll loop
//! so shutdown needs no extra machinery.

use crate::Shared;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread;

pub(crate) fn serve_http(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                // Requests are tiny and responses are built from in-memory
                // snapshots; handling inline keeps the thread count flat.
                let _ = handle(stream, &shared);
            }
            Err(_) => thread::sleep(shared.poll()),
        }
    }
}

fn handle(mut stream: TcpStream, shared: &Shared) -> std::io::Result<()> {
    stream.set_read_timeout(Some(std::time::Duration::from_millis(500)))?;
    let mut buf = [0u8; 1024];
    let mut req = Vec::new();
    // Read just far enough to see the request line.
    while !req.windows(2).any(|w| w == b"\r\n") && req.len() < 4096 {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => req.extend_from_slice(&buf[..n]),
            Err(_) => break,
        }
    }
    let line = String::from_utf8_lossy(&req);
    let line = line.lines().next().unwrap_or("");
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("/");

    let (status, ctype, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            String::from("only GET here\n"),
        )
    } else {
        match path {
            "/healthz" => ("200 OK", "text/plain; charset=utf-8", String::from("ok\n")),
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                shared.metrics_view().to_prometheus(),
            ),
            "/sources" => (
                "200 OK",
                "application/json; charset=utf-8",
                shared.sources_json(),
            ),
            _ => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                String::from("not found\n"),
            ),
        }
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}
