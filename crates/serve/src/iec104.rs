//! Native IEC 104 ingest transport.
//!
//! [`Iec104Conn`] implements [`FrameTransport`] over a live IEC 60870-5-104
//! TCP connection: it delimits APDUs with the iec104 crate's
//! [`FrameScanner`], runs the APCI session state machine
//! ([`Connection`] in the `Controlled` role — answering STARTDT/STOPDT/TESTFR
//! activations and emitting S-frame acknowledgements under the k/w windows
//! and t1/t2/t3 timers), and synthesizes one [`ParsedPacket`] per accepted
//! APDU so the downstream `StreamSession` analysis sees the same packet
//! vocabulary a pcap feed produces.
//!
//! The synthesized packets use a fixed loopback-style 4-tuple
//! (`10.104.0.2:49152 → 10.104.0.1:2404` for client traffic and the reverse
//! for our replies), cumulative TCP sequence/acknowledgement numbers, and the
//! caller-supplied connection-relative timestamp. Because every accepted
//! APDU maps to exactly one synthesized packet regardless of how the bytes
//! were segmented on the wire, a live session and an offline replay of the
//! same byte stream produce bit-identical packet sequences — the property
//! [`equivalent_capture`] exposes and the loopback parity tests assert.

use uncharted_iec104::apci::{Apci, CONTROL_LEN, MAX_APDU_LENGTH};
use uncharted_iec104::apdu::Apdu;
use uncharted_iec104::conn::{Action, CloseReason, ConnConfig, Connection, DtState, Role};
use uncharted_iec104::Dialect;
use uncharted_nettap::ipv4;
use uncharted_nettap::pcap::{CapturedPacket, ParsedPacket};
use uncharted_nettap::source::{FrameTransport, SourceOutcome};
use uncharted_nettap::tcp::{TcpFlags, TcpHeader};
use uncharted_nettap::MacAddr;

use uncharted_iec104::scan::{FrameScanner, ScanKind};

/// Well-known IEC 104 server port used for synthesized packets.
const IEC104_PORT: u16 = 2404;
/// Ephemeral client port used for synthesized packets.
const CLIENT_PORT: u16 = 49152;

/// A live IEC 104 connection adapted to the [`FrameTransport`] contract.
#[derive(Debug)]
pub struct Iec104Conn {
    scanner: FrameScanner,
    conn: Connection,
    /// Bytes our side of the state machine wants written back to the peer.
    tx: Vec<u8>,
    /// Cumulative payload octets synthesized client→server (TCP seq space).
    client_sent: u32,
    /// Cumulative payload octets synthesized server→client (TCP seq space).
    server_sent: u32,
    ident: u16,
    fault: Option<String>,
}

impl Iec104Conn {
    /// Create a transport for one accepted connection. The state machine
    /// starts in the `Controlled` role with data transfer stopped: I-frames
    /// arriving before a STARTDT activation quarantine the source.
    pub fn new(cfg: ConnConfig) -> Iec104Conn {
        Iec104Conn {
            scanner: FrameScanner::new(),
            conn: Connection::new(Role::Controlled, cfg, 0.0),
            tx: Vec::new(),
            client_sent: 0,
            server_sent: 0,
            ident: 0,
            fault: None,
        }
    }

    fn set_fault(&mut self, reason: String) -> String {
        self.fault = Some(reason.clone());
        reason
    }

    /// Synthesize the pcap-equivalent packet for one APDU crossing the
    /// connection in the given direction.
    fn synth(&mut self, from_client: bool, now: f64, payload: &[u8]) -> ParsedPacket {
        let client_ip = ipv4::addr(10, 104, 0, 2);
        let server_ip = ipv4::addr(10, 104, 0, 1);
        let (src_ip, dst_ip, src_port, dst_port, sent, acked, src_dev, dst_dev) = if from_client {
            (client_ip, server_ip, CLIENT_PORT, IEC104_PORT, self.client_sent, self.server_sent, 2, 1)
        } else {
            (server_ip, client_ip, IEC104_PORT, CLIENT_PORT, self.server_sent, self.client_sent, 1, 2)
        };
        let tcp = TcpHeader {
            src_port,
            dst_port,
            seq: 1 + sent,
            ack: 1 + acked,
            flags: TcpFlags::ACK.with(TcpFlags::PSH),
            window: 4096,
        };
        let captured = CapturedPacket::build(
            now,
            MacAddr::from_device_id(src_dev),
            MacAddr::from_device_id(dst_dev),
            src_ip,
            dst_ip,
            tcp,
            payload,
            self.ident,
        );
        self.ident = self.ident.wrapping_add(1);
        if from_client {
            self.client_sent = self.client_sent.wrapping_add(payload.len() as u32);
        } else {
            self.server_sent = self.server_sent.wrapping_add(payload.len() as u32);
        }
        captured
            .parse()
            .expect("synthesized IEC 104 packet is well-formed")
    }

    /// Apply state-machine actions: queue transmissions for write-back (and
    /// mirror them as synthesized server→client packets), surface closes as
    /// quarantine reasons.
    fn apply_actions(
        &mut self,
        actions: Vec<Action>,
        now: f64,
        out: &mut Vec<ParsedPacket>,
    ) -> Result<(), String> {
        for action in actions {
            match action {
                Action::Transmit(apdu) => {
                    let bytes = apdu
                        .encode(Dialect::STANDARD)
                        .map_err(|e| format!("cannot encode reply APDU: {e}"))?;
                    let pkt = self.synth(false, now, &bytes);
                    out.push(pkt);
                    self.tx.extend_from_slice(&bytes);
                }
                // The analysis pipeline decodes ASDUs from the synthesized
                // packet stream itself; delivery here would double-count.
                Action::Deliver(_) => {}
                Action::Close(reason) => return Err(close_reason(reason).to_string()),
            }
        }
        Ok(())
    }
}

/// Human-readable quarantine vocabulary for state-machine teardowns.
fn close_reason(reason: CloseReason) -> &'static str {
    match reason {
        CloseReason::T1DataAck => "t1 expired awaiting I-frame acknowledgement",
        CloseReason::T1TestFr => "TESTFR keep-alive unanswered within t1",
        CloseReason::T1UConfirm => "t1 expired awaiting U-frame confirmation",
        CloseReason::ProtocolError => "IEC 104 sequence violation (protocol error)",
    }
}

impl FrameTransport for Iec104Conn {
    fn on_bytes(
        &mut self,
        bytes: &[u8],
        now: f64,
        out: &mut Vec<ParsedPacket>,
    ) -> Result<usize, String> {
        if let Some(fault) = &self.fault {
            return Err(fault.clone());
        }
        let before = out.len();
        self.scanner.feed(bytes);
        while let Some(scanned) = self.scanner.next_frame() {
            let frame = self.scanner.slice(&scanned.range).to_vec();
            match scanned.kind {
                ScanKind::Junk => {
                    return Err(self.set_fault(format!(
                        "unframeable bytes on IEC 104 stream ({} octets)",
                        frame.len()
                    )));
                }
                ScanKind::Frame => {
                    let len = frame[1] as usize;
                    if !(CONTROL_LEN..=MAX_APDU_LENGTH).contains(&len) {
                        return Err(
                            self.set_fault(format!("invalid APDU length octet ({len})"))
                        );
                    }
                    let apci = match Apci::decode([frame[2], frame[3], frame[4], frame[5]]) {
                        Ok(apci) => apci,
                        Err(e) => {
                            return Err(self.set_fault(format!("bad APCI control field: {e}")))
                        }
                    };
                    if apci.is_i() && self.conn.dt_state() != DtState::Started {
                        return Err(self.set_fault(
                            "I-frame before STARTDT: data transfer not started".to_string(),
                        ));
                    }
                    let pkt = self.synth(true, now, &frame);
                    out.push(pkt);
                    let actions = self.conn.on_apdu(&Apdu { apci, asdu: None }, now);
                    if let Err(reason) = self.apply_actions(actions, now, out) {
                        return Err(self.set_fault(reason));
                    }
                }
            }
        }
        Ok(out.len() - before)
    }

    fn on_tick(&mut self, now: f64, out: &mut Vec<ParsedPacket>) -> Result<(), String> {
        if let Some(fault) = &self.fault {
            return Err(fault.clone());
        }
        let actions = self.conn.poll(now);
        if let Err(reason) = self.apply_actions(actions, now, out) {
            return Err(self.set_fault(reason));
        }
        Ok(())
    }

    fn on_eof(&mut self, _now: f64, _out: &mut Vec<ParsedPacket>) -> SourceOutcome {
        let pending = self.scanner.pending();
        if pending > 0 {
            SourceOutcome::Quarantined(format!(
                "feed ended mid-frame ({pending} trailing bytes)"
            ))
        } else {
            SourceOutcome::Drained
        }
    }

    fn take_tx(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.tx)
    }

    fn kind(&self) -> &'static str {
        "iec104"
    }
}

/// Replay a recorded client byte stream through a fresh [`Iec104Conn`] and
/// return the synthesized packets a live session over the same bytes would
/// have produced (both directions, in order).
///
/// This is the batch-side half of the live-vs-batch parity contract: feed
/// the same bytes the client wrote on the wire, analyze the result with the
/// batch pipeline, and the counter fingerprint matches the live session's.
/// A stream the live path would have quarantined is an `Err` here too.
pub fn equivalent_capture(
    stream: &[u8],
    cfg: ConnConfig,
) -> Result<Vec<ParsedPacket>, String> {
    let mut conn = Iec104Conn::new(cfg);
    let mut out = Vec::new();
    conn.on_bytes(stream, 0.0, &mut out)?;
    match conn.on_eof(0.0, &mut out) {
        SourceOutcome::Drained => Ok(out),
        SourceOutcome::Quarantined(reason) => Err(reason),
        SourceOutcome::Evicted(idle) => Err(format!("unexpected eviction after {idle}s idle")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uncharted_iec104::apci::UFunction;

    fn u_frame(func: UFunction) -> Vec<u8> {
        Apdu::u_frame(func)
            .encode(Dialect::STANDARD)
            .expect("encode U-frame")
    }

    fn i_frame(send_seq: u16) -> Vec<u8> {
        let mut frame = vec![0x68, CONTROL_LEN as u8];
        frame.extend_from_slice(&Apci::I {
            send_seq,
            recv_seq: 0,
        }
        .encode());
        frame
    }

    #[test]
    fn startdt_is_confirmed_and_mirrored() {
        let mut conn = Iec104Conn::new(ConnConfig::default());
        let mut out = Vec::new();
        let n = conn
            .on_bytes(&u_frame(UFunction::StartDtAct), 0.0, &mut out)
            .expect("handshake accepted");
        // Client activation + our confirmation are both synthesized.
        assert_eq!(n, 2);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].tcp.dst_port, IEC104_PORT);
        assert_eq!(out[1].tcp.src_port, IEC104_PORT);
        let tx = conn.take_tx();
        assert_eq!(tx, u_frame(UFunction::StartDtCon), "STARTDT con written back");
        assert!(conn.take_tx().is_empty(), "take_tx drains");
    }

    #[test]
    fn i_frame_before_startdt_quarantines() {
        let mut conn = Iec104Conn::new(ConnConfig::default());
        let mut out = Vec::new();
        let err = conn
            .on_bytes(&i_frame(0), 0.0, &mut out)
            .expect_err("data before handshake must be refused");
        assert!(err.contains("STARTDT"), "got: {err}");
        // Fault is sticky: a later STARTDT does not revive the source.
        let err2 = conn
            .on_bytes(&u_frame(UFunction::StartDtAct), 1.0, &mut out)
            .expect_err("faulted transport stays faulted");
        assert_eq!(err, err2);
    }

    #[test]
    fn w_window_triggers_supervisory_ack() {
        let cfg = ConnConfig::default();
        let w = cfg.w;
        let mut conn = Iec104Conn::new(cfg);
        let mut out = Vec::new();
        let mut stream = u_frame(UFunction::StartDtAct);
        for s in 0..w {
            stream.extend_from_slice(&i_frame(s));
        }
        conn.on_bytes(&stream, 0.0, &mut out)
            .expect("in-sequence I-frames accepted");
        // act + con + w I-frames + one S-frame ack.
        assert_eq!(out.len(), 2 + w as usize + 1);
        let tx = conn.take_tx();
        let mut expected = u_frame(UFunction::StartDtCon);
        expected.extend_from_slice(
            &Apdu::s_frame(w).encode(Dialect::STANDARD).expect("encode"),
        );
        assert_eq!(tx, expected, "S-frame acknowledges the full window");
    }

    #[test]
    fn testfr_timeout_quarantines_via_tick() {
        let cfg = ConnConfig {
            t3: 0.1,
            t1: 0.2,
            ..ConnConfig::default()
        };
        let mut conn = Iec104Conn::new(cfg);
        let mut out = Vec::new();
        conn.on_bytes(&u_frame(UFunction::StartDtAct), 0.0, &mut out)
            .expect("handshake");
        conn.take_tx();
        // Idle past t3: we probe with TESTFR act.
        conn.on_tick(0.15, &mut out).expect("probe, not fault");
        assert_eq!(conn.take_tx(), u_frame(UFunction::TestFrAct));
        // No TESTFR con within t1: teardown.
        let err = conn.on_tick(0.4, &mut out).expect_err("keep-alive timeout");
        assert!(err.contains("TESTFR"), "got: {err}");
    }

    #[test]
    fn equivalent_capture_is_deterministic_and_matches_live_framing() {
        let mut stream = u_frame(UFunction::StartDtAct);
        for s in 0..3 {
            stream.extend_from_slice(&i_frame(s));
        }
        let a = equivalent_capture(&stream, ConnConfig::default()).expect("replay");
        let b = equivalent_capture(&stream, ConnConfig::default()).expect("replay");
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.payload, y.payload);
            assert_eq!(x.tcp, y.tcp);
            assert_eq!(x.ip.src, y.ip.src);
        }
        // Live path fed byte-at-a-time synthesizes the identical sequence.
        let mut live = Iec104Conn::new(ConnConfig::default());
        let mut live_out = Vec::new();
        for byte in &stream {
            live.on_bytes(std::slice::from_ref(byte), 0.0, &mut live_out)
                .expect("live replay");
        }
        assert_eq!(live.on_eof(0.0, &mut live_out), SourceOutcome::Drained);
        assert_eq!(live_out.len(), a.len());
        for (x, y) in live_out.iter().zip(&a) {
            assert_eq!(x.payload, y.payload);
            assert_eq!(x.tcp, y.tcp);
        }
    }

    #[test]
    fn truncated_stream_quarantines_on_eof() {
        let mut conn = Iec104Conn::new(ConnConfig::default());
        let mut out = Vec::new();
        let frame = u_frame(UFunction::StartDtAct);
        conn.on_bytes(&frame[..3], 0.0, &mut out).expect("partial frame pends");
        match conn.on_eof(0.0, &mut out) {
            SourceOutcome::Quarantined(reason) => {
                assert!(reason.contains("mid-frame"), "got: {reason}")
            }
            other => panic!("expected quarantine, got {other:?}"),
        }
    }
}
