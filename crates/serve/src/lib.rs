//! Long-running ingest service: many concurrent pcap-over-TCP feeds, one
//! bounded streaming session per source.
//!
//! `uncharted serve` is the deployment story for the streaming engine.
//! Each connection on the listen socket is one *source* — a tap shipping
//! classic libpcap bytes, exactly what `uncharted feed` (or `tcpdump -w -`
//! piped through netcat) produces. Per source the server runs the same
//! machinery as `analyze --follow`: a reader thread frames and decodes
//! bytes as they arrive and hands bounded batches across a bounded SPSC
//! queue (backpressure, never unbounded buffering) to a worker thread
//! driving a [`StreamSession`] in bounded-memory mode. N concurrent feeds
//! of the same capture each converge to the *bit-identical* counter
//! fingerprint a batch `uncharted analyze` of that capture produces — the
//! parity contract the streaming engine already proves, now held per
//! source under concurrency.
//!
//! Fault isolation is per source. A feed that stops mid-record, sends
//! garbage framing, or announces an absurd record length is *quarantined*:
//! a typed [`ServeEvent`] is logged and that source alone is closed,
//! finalized with whatever legitimate prefix it delivered. A feed that
//! goes silent past the source timeout is *evicted* the same way. Other
//! sources never notice.
//!
//! Observability rides on the shared [`MetricsRegistry`]: service-level
//! counters carry a `source` label, and the minimal HTTP endpoint exposes
//! `/metrics` (Prometheus text: the service registry merged with every
//! source's pipeline registry relabelled by source id), `/healthz`, and
//! `/sources` (per-source JSON summaries). Everything is `std::net` +
//! threads — no async runtime, same as the rest of the workspace.
//!
//! Shutdown is a graceful drain: [`Server::shutdown`] stops accepting,
//! each reader delivers what it has framed, every session is finalized
//! (emitting its closing `StreamEvent`s), and [`Server::join`] returns the
//! final per-source reports.

pub mod feed;
mod http;

pub use feed::{feed_bytes, feed_path, FeedStats};

use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use uncharted_analysis::stream::{StreamConfig, StreamSession};
use uncharted_analysis::PipelineMetrics;
use uncharted_nettap::pcap::ParsedPacket;
use uncharted_nettap::source::PcapFramer;
use uncharted_obs::{Counter, Gauge, MetricsRegistry, MetricsSnapshot};

/// Tuning knobs for the ingest service. `window` and `idle_timeout` carry
/// the exact `analyze --follow` semantics into every per-source session.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Tumbling window length in seconds for per-source windowed output
    /// (`None` = no windowing), as in `analyze --follow --window`.
    pub window: Option<f64>,
    /// Evict a *flow* idle longer than this many seconds inside a session,
    /// as in `analyze --follow --idle-timeout`.
    pub idle_timeout: Option<f64>,
    /// Evict a *source* that delivers no bytes for this many seconds.
    pub source_timeout: f64,
    /// Packets per batch handed from reader to worker.
    pub batch: usize,
    /// Batches buffered per source before the reader blocks (backpressure).
    pub queue_depth: usize,
    /// Socket poll granularity in milliseconds: read timeout on source
    /// sockets and accept-loop sleep. Bounds both shutdown latency and the
    /// staleness of partially filled batches.
    pub poll_ms: u64,
    /// Print typed events (JSON lines) as they happen.
    pub verbose: bool,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            window: None,
            idle_timeout: None,
            source_timeout: 30.0,
            batch: 512,
            queue_depth: 4,
            poll_ms: 25,
            verbose: false,
        }
    }
}

/// Lifecycle of one feed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceStatus {
    /// Connected and streaming.
    Active,
    /// Fed a clean end of stream (or a graceful server drain) and was
    /// finalized normally.
    Drained,
    /// Closed for cause: truncated or garbage pcap framing, or a socket
    /// error. The legitimate prefix was still finalized.
    Quarantined,
    /// Closed after delivering no bytes for the source timeout.
    Evicted,
}

impl SourceStatus {
    /// Lowercase label used in JSON and metrics.
    pub fn label(self) -> &'static str {
        match self {
            SourceStatus::Active => "active",
            SourceStatus::Drained => "drained",
            SourceStatus::Quarantined => "quarantined",
            SourceStatus::Evicted => "evicted",
        }
    }
}

/// Typed service-level events, one JSON line each under `verbose`.
/// (Per-packet analysis events stay `StreamEvent`s inside each session;
/// these cover source lifecycle, the serve layer's own vocabulary.)
#[derive(Debug, Clone)]
pub enum ServeEvent {
    /// A feed connected and its session opened.
    SourceConnected {
        /// Source id (dense, in accept order).
        id: usize,
        /// Peer address.
        peer: String,
    },
    /// A feed ended cleanly and its session finalized.
    SourceDrained {
        /// Source id.
        id: usize,
        /// Decoded packets delivered over the source's lifetime.
        packets: u64,
    },
    /// A feed was closed for cause (bad framing, truncation, socket
    /// error); its legitimate prefix was finalized.
    SourceQuarantined {
        /// Source id.
        id: usize,
        /// Human-readable cause.
        reason: String,
    },
    /// A silent feed was closed after the source timeout.
    SourceEvicted {
        /// Source id.
        id: usize,
        /// Seconds since the source last delivered bytes.
        idle_secs: f64,
    },
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl ServeEvent {
    /// One JSON object per event, `type`-tagged like `StreamEvent::to_json`.
    pub fn to_json(&self) -> String {
        match self {
            ServeEvent::SourceConnected { id, peer } => format!(
                "{{\"type\":\"source_connected\",\"source\":{id},\"peer\":\"{}\"}}",
                json_escape(peer)
            ),
            ServeEvent::SourceDrained { id, packets } => {
                format!("{{\"type\":\"source_drained\",\"source\":{id},\"packets\":{packets}}}")
            }
            ServeEvent::SourceQuarantined { id, reason } => format!(
                "{{\"type\":\"source_quarantined\",\"source\":{id},\"reason\":\"{}\"}}",
                json_escape(reason)
            ),
            ServeEvent::SourceEvicted { id, idle_secs } => format!(
                "{{\"type\":\"source_evicted\",\"source\":{id},\"idle_secs\":{idle_secs:.3}}}"
            ),
        }
    }
}

/// Snapshot of one source for `/sources` and [`Server::reports`].
#[derive(Debug, Clone)]
pub struct SourceReport {
    /// Source id (accept order).
    pub id: usize,
    /// Peer address of the feed socket.
    pub peer: String,
    /// Current lifecycle state.
    pub status: SourceStatus,
    /// Cause, when quarantined.
    pub fault: Option<String>,
    /// Decoded packets delivered to the session so far.
    pub packets: u64,
    /// Batches delivered.
    pub batches: u64,
    /// Analysis `StreamEvent`s the session emitted.
    pub events: u64,
    /// Times the reader blocked on a full queue (backpressure).
    pub backpressure_waits: u64,
    /// Counter fingerprint of the source's pipeline registry, once
    /// finalized — the batch-parity object.
    pub fingerprint: Option<String>,
    /// `StreamSummary::to_json()` of the finalized session.
    pub summary_json: Option<String>,
}

struct Finalized {
    fingerprint: String,
    summary_json: String,
}

struct SourceState {
    id: usize,
    peer: String,
    status: Mutex<SourceStatus>,
    fault: Mutex<Option<String>>,
    packets: AtomicU64,
    batches: AtomicU64,
    events: AtomicU64,
    backpressure_waits: AtomicU64,
    metrics: Arc<PipelineMetrics>,
    done: Mutex<Option<Finalized>>,
}

impl SourceState {
    fn report(&self) -> SourceReport {
        let done = self.done.lock().expect("source finalization lock");
        SourceReport {
            id: self.id,
            peer: self.peer.clone(),
            status: *self.status.lock().expect("source status lock"),
            fault: self.fault.lock().expect("source fault lock").clone(),
            packets: self.packets.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            events: self.events.load(Ordering::Relaxed),
            backpressure_waits: self.backpressure_waits.load(Ordering::Relaxed),
            fingerprint: done.as_ref().map(|f| f.fingerprint.clone()),
            summary_json: done.as_ref().map(|f| f.summary_json.clone()),
        }
    }
}

pub(crate) struct Shared {
    cfg: ServeConfig,
    pub(crate) stop: AtomicBool,
    registry: Arc<MetricsRegistry>,
    sources: Mutex<Vec<Arc<SourceState>>>,
    events: Mutex<Vec<ServeEvent>>,
    sources_active: Arc<Gauge>,
    sources_opened: Arc<Counter>,
    sources_drained: Arc<Counter>,
    sources_quarantined: Arc<Counter>,
    sources_evicted: Arc<Counter>,
}

impl Shared {
    fn new(cfg: ServeConfig) -> Shared {
        let registry = Arc::new(MetricsRegistry::new());
        Shared {
            sources_active: registry.gauge("serve_sources_active"),
            sources_opened: registry.counter("serve_sources_opened"),
            sources_drained: registry.counter_with("serve_sources_closed", &[("state", "drained")]),
            sources_quarantined: registry
                .counter_with("serve_sources_closed", &[("state", "quarantined")]),
            sources_evicted: registry.counter_with("serve_sources_closed", &[("state", "evicted")]),
            cfg,
            stop: AtomicBool::new(false),
            registry,
            sources: Mutex::new(Vec::new()),
            events: Mutex::new(Vec::new()),
        }
    }

    pub(crate) fn poll(&self) -> Duration {
        Duration::from_millis(self.cfg.poll_ms.max(1))
    }

    fn push_event(&self, ev: ServeEvent) {
        if self.cfg.verbose {
            eprintln!("{}", ev.to_json());
        }
        self.events.lock().expect("serve event lock").push(ev);
    }

    /// Service registry merged with each source's pipeline registry
    /// relabelled by source id — the `/metrics` view. Per-source
    /// histograms and stage samples are dropped: only their name-keyed
    /// identity would collide across sources, and the counters carry the
    /// parity-relevant signal.
    pub(crate) fn metrics_view(&self) -> MetricsSnapshot {
        let mut view = self.registry.snapshot();
        let sources = self.sources.lock().expect("serve sources lock");
        for src in sources.iter() {
            let mut snap = src.metrics.snapshot();
            snap.histograms.clear();
            snap.stages.clear();
            view.merge(snap.with_label("source", &src.id.to_string()));
        }
        view
    }

    pub(crate) fn sources_json(&self) -> String {
        let sources = self.sources.lock().expect("serve sources lock");
        let mut out = String::from("[");
        for (i, src) in sources.iter().enumerate() {
            let r = src.report();
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"id\":{},\"peer\":\"{}\",\"status\":\"{}\",\"packets\":{},\"batches\":{},\"events\":{},\"backpressure_waits\":{}",
                r.id,
                json_escape(&r.peer),
                r.status.label(),
                r.packets,
                r.batches,
                r.events,
                r.backpressure_waits,
            ));
            if let Some(fault) = &r.fault {
                out.push_str(&format!(",\"fault\":\"{}\"", json_escape(fault)));
            }
            match &r.fingerprint {
                Some(fp) => out.push_str(&format!(
                    ",\"finalized\":true,\"fingerprint_fnv64\":\"{:016x}\"",
                    fnv64(fp)
                )),
                None => out.push_str(",\"finalized\":false"),
            }
            out.push('}');
        }
        out.push(']');
        out
    }

    fn reports(&self) -> Vec<SourceReport> {
        let sources = self.sources.lock().expect("serve sources lock");
        sources.iter().map(|s| s.report()).collect()
    }
}

fn fnv64(s: &str) -> u64 {
    use std::hash::Hasher;
    let mut h = uncharted_obs::FnvHasher::default();
    h.write(s.as_bytes());
    h.finish()
}

/// A running ingest service: feed listener, optional HTTP endpoint, one
/// reader + worker thread pair per connected source.
pub struct Server {
    shared: Arc<Shared>,
    listen_addr: SocketAddr,
    http_addr: Option<SocketAddr>,
    accept: Option<JoinHandle<()>>,
    http: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind the feed listener (and the HTTP endpoint, when given) and
    /// start accepting sources. `"127.0.0.1:0"` picks a free port;
    /// [`listen_addr`](Server::listen_addr) reports the choice.
    pub fn bind(listen: &str, http: Option<&str>, cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(listen)?;
        listener.set_nonblocking(true)?;
        let listen_addr = listener.local_addr()?;
        let shared = Arc::new(Shared::new(cfg));

        let (http_handle, http_addr) = match http {
            Some(addr) => {
                let http_listener = TcpListener::bind(addr)?;
                http_listener.set_nonblocking(true)?;
                let http_addr = http_listener.local_addr()?;
                let shared = Arc::clone(&shared);
                (
                    Some(thread::spawn(move || {
                        http::serve_http(http_listener, shared)
                    })),
                    Some(http_addr),
                )
            }
            None => (None, None),
        };

        let accept = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || accept_loop(listener, shared))
        };

        Ok(Server {
            shared,
            listen_addr,
            http_addr,
            accept: Some(accept),
            http: http_handle,
        })
    }

    /// Address of the feed listener.
    pub fn listen_addr(&self) -> SocketAddr {
        self.listen_addr
    }

    /// Address of the HTTP endpoint, when one was bound.
    pub fn http_addr(&self) -> Option<SocketAddr> {
        self.http_addr
    }

    /// The `/metrics` body: service registry merged with every source's
    /// relabelled pipeline registry, rendered as Prometheus text.
    pub fn metrics_prometheus(&self) -> String {
        self.shared.metrics_view().to_prometheus()
    }

    /// Current per-source reports (sources still streaming show
    /// `Active` with no fingerprint yet).
    pub fn reports(&self) -> Vec<SourceReport> {
        self.shared.reports()
    }

    /// Every service-level event so far, in order.
    pub fn events(&self) -> Vec<ServeEvent> {
        self.shared.events.lock().expect("serve event lock").clone()
    }

    /// Begin a graceful drain: stop accepting, let every reader flush what
    /// it has framed, finalize every session. Returns immediately; use
    /// [`join`](Server::join) to wait for completion.
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
    }

    /// Drain and wait until every source is finalized; returns the final
    /// per-source reports.
    pub fn join(mut self) -> Vec<SourceReport> {
        self.shutdown();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.http.take() {
            let _ = h.join();
        }
        self.shared.reports()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.http.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut next_id = 0usize;
    let mut sources: Vec<JoinHandle<()>> = Vec::new();
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, peer)) => {
                let id = next_id;
                next_id += 1;
                let state = Arc::new(SourceState {
                    id,
                    peer: peer.to_string(),
                    status: Mutex::new(SourceStatus::Active),
                    fault: Mutex::new(None),
                    packets: AtomicU64::new(0),
                    batches: AtomicU64::new(0),
                    events: AtomicU64::new(0),
                    backpressure_waits: AtomicU64::new(0),
                    metrics: PipelineMetrics::new(),
                    done: Mutex::new(None),
                });
                shared
                    .sources
                    .lock()
                    .expect("serve sources lock")
                    .push(Arc::clone(&state));
                shared.sources_opened.inc();
                shared.sources_active.inc();
                shared.push_event(ServeEvent::SourceConnected {
                    id,
                    peer: peer.to_string(),
                });
                let shared = Arc::clone(&shared);
                sources.push(thread::spawn(move || run_source(stream, state, shared)));
            }
            // WouldBlock is the idle case; any transient accept error gets
            // the same backoff rather than a hot spin.
            Err(_) => thread::sleep(shared.poll()),
        }
    }
    // Graceful drain: every reader sees the stop flag within one poll
    // interval, flushes, and finalizes its session before we return.
    for h in sources {
        let _ = h.join();
    }
}

enum Outcome {
    Drained,
    Quarantined(String),
    Evicted(f64),
}

/// One source, end to end: reader loop on this thread, session worker on
/// a sibling, joined before the terminal status is recorded — so a
/// non-`Active` status always implies the fingerprint is available.
fn run_source(stream: TcpStream, state: Arc<SourceState>, shared: Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(shared.poll()));
    let (tx, rx) = mpsc::sync_channel::<Vec<ParsedPacket>>(shared.cfg.queue_depth.max(1));
    let worker = {
        let state = Arc::clone(&state);
        let shared = Arc::clone(&shared);
        thread::spawn(move || run_worker(rx, state, shared))
    };
    let outcome = read_loop(stream, &tx, &state, &shared);
    drop(tx);
    let _ = worker.join();

    let (status, event) = match outcome {
        Outcome::Drained => {
            shared.sources_drained.inc();
            (
                SourceStatus::Drained,
                ServeEvent::SourceDrained {
                    id: state.id,
                    packets: state.packets.load(Ordering::Relaxed),
                },
            )
        }
        Outcome::Quarantined(reason) => {
            shared.sources_quarantined.inc();
            *state.fault.lock().expect("source fault lock") = Some(reason.clone());
            (
                SourceStatus::Quarantined,
                ServeEvent::SourceQuarantined {
                    id: state.id,
                    reason,
                },
            )
        }
        Outcome::Evicted(idle_secs) => {
            shared.sources_evicted.inc();
            (
                SourceStatus::Evicted,
                ServeEvent::SourceEvicted {
                    id: state.id,
                    idle_secs,
                },
            )
        }
    };
    *state.status.lock().expect("source status lock") = status;
    shared.sources_active.dec();
    shared.push_event(event);
}

fn read_loop(
    mut stream: TcpStream,
    tx: &SyncSender<Vec<ParsedPacket>>,
    state: &SourceState,
    shared: &Shared,
) -> Outcome {
    let cfg = &shared.cfg;
    let batch_size = cfg.batch.max(1);
    let mut framer = PcapFramer::new();
    let mut pending: Vec<ParsedPacket> = Vec::new();
    let mut tmp = vec![0u8; 16 * 1024];
    let mut last_data = Instant::now();
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            // Server-initiated drain: whatever framed completely is
            // delivered; a partial record at this point is our doing, not
            // the feed's.
            flush(&mut pending, tx, state);
            return Outcome::Drained;
        }
        match stream.read(&mut tmp) {
            Ok(0) => {
                flush(&mut pending, tx, state);
                return if framer.pending_bytes() > 0 {
                    Outcome::Quarantined(format!(
                        "feed ended mid-record ({} trailing bytes)",
                        framer.pending_bytes()
                    ))
                } else {
                    Outcome::Drained
                };
            }
            Ok(n) => {
                last_data = Instant::now();
                match framer.push(&tmp[..n], &mut pending) {
                    Ok(_) => {
                        while pending.len() >= batch_size {
                            let rest = pending.split_off(batch_size);
                            let batch = std::mem::replace(&mut pending, rest);
                            if !send_batch(tx, batch, state) {
                                return Outcome::Drained;
                            }
                        }
                    }
                    Err(e) => {
                        // Records decoded before the fault are legitimate;
                        // deliver them, then close this source alone.
                        flush(&mut pending, tx, state);
                        return Outcome::Quarantined(format!("bad pcap framing: {e}"));
                    }
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // Poll tick: bound the staleness of a partial batch, then
                // check the idle clock.
                flush(&mut pending, tx, state);
                let idle = last_data.elapsed().as_secs_f64();
                if idle >= cfg.source_timeout {
                    return Outcome::Evicted(idle);
                }
            }
            Err(e) => {
                flush(&mut pending, tx, state);
                return Outcome::Quarantined(format!("read error: {e}"));
            }
        }
    }
}

/// Deliver a full batch over the bounded queue, counting backpressure
/// blocks. `false` means the worker is gone (only during teardown).
fn send_batch(
    tx: &SyncSender<Vec<ParsedPacket>>,
    batch: Vec<ParsedPacket>,
    state: &SourceState,
) -> bool {
    match tx.try_send(batch) {
        Ok(()) => true,
        Err(TrySendError::Full(batch)) => {
            state.backpressure_waits.fetch_add(1, Ordering::Relaxed);
            tx.send(batch).is_ok()
        }
        Err(TrySendError::Disconnected(_)) => false,
    }
}

fn flush(pending: &mut Vec<ParsedPacket>, tx: &SyncSender<Vec<ParsedPacket>>, state: &SourceState) {
    if !pending.is_empty() {
        send_batch(tx, std::mem::take(pending), state);
    }
}

fn run_worker(rx: Receiver<Vec<ParsedPacket>>, state: Arc<SourceState>, shared: Arc<Shared>) {
    let mut session = StreamSession::new(
        StreamConfig {
            window: shared.cfg.window,
            idle_timeout: shared.cfg.idle_timeout,
            retain_payload: false,
        },
        Arc::clone(&state.metrics),
    );
    let label = state.id.to_string();
    let packets_in = shared
        .registry
        .counter_with("serve_source_packets", &[("source", &label)]);
    let batches_in = shared
        .registry
        .counter_with("serve_source_batches", &[("source", &label)]);
    for batch in rx {
        state
            .packets
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        state.batches.fetch_add(1, Ordering::Relaxed);
        packets_in.add(batch.len() as u64);
        batches_in.inc();
        let events = session.push_batch(&batch);
        state
            .events
            .fetch_add(events.len() as u64, Ordering::Relaxed);
        if shared.cfg.verbose {
            for ev in &events {
                println!("{{\"source\":{},\"event\":{}}}", state.id, ev.to_json());
            }
        }
    }
    let (summary, events) = session.finish();
    state
        .events
        .fetch_add(events.len() as u64, Ordering::Relaxed);
    if shared.cfg.verbose {
        for ev in &events {
            println!("{{\"source\":{},\"event\":{}}}", state.id, ev.to_json());
        }
    }
    *state.done.lock().expect("source finalization lock") = Some(Finalized {
        fingerprint: state.metrics.snapshot().counter_fingerprint(),
        summary_json: summary.to_json(),
    });
}
