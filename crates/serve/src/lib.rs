//! Long-running ingest service: many concurrent live feeds, one bounded
//! streaming session per source.
//!
//! `uncharted serve` is the deployment story for the streaming engine.
//! Each connection on an ingest socket is one *source*, and every source
//! speaks one of two wire transports:
//!
//! - **pcap-over-TCP** — a tap shipping classic libpcap bytes, exactly
//!   what `uncharted feed` (or `tcpdump -w -` piped through netcat)
//!   produces.
//! - **native IEC 104** — a live outstation or control-center client
//!   speaking IEC 60870-5-104 directly. The server answers the APCI
//!   session layer itself (STARTDT/STOPDT/TESTFR confirmations, S-frame
//!   acknowledgements under the k/w windows, t1/t2/t3 timers) and
//!   synthesizes the pcap-equivalent packet stream for analysis.
//!
//! Both are implementations of one contract — [`FrameTransport`] in
//! `nettap::source`: bytes in, timestamped [`ParsedPacket`]s plus a shared
//! fault vocabulary ([`SourceOutcome`]) out. Everything downstream of the
//! transport is identical: a reader thread feeds the transport and hands
//! bounded batches across a bounded SPSC queue (backpressure, never
//! unbounded buffering) to a worker thread driving a [`StreamSession`] in
//! bounded-memory mode. N concurrent feeds of the same capture each
//! converge to the *bit-identical* counter fingerprint a batch `uncharted
//! analyze` of that capture produces — the parity contract the streaming
//! engine already proves, now held per source under concurrency and, for
//! native 104, across the live-session/offline-replay boundary (see
//! [`iec104::equivalent_capture`]).
//!
//! Fault isolation is per source. A feed that stops mid-record, sends
//! garbage framing, violates the IEC 104 sequence rules, or lets a TESTFR
//! keep-alive expire is *quarantined*: a typed [`ServeEvent`] is logged
//! and that source alone is closed, finalized with whatever legitimate
//! prefix it delivered. A feed that goes silent past the source timeout is
//! *evicted* the same way. Other sources never notice.
//!
//! Observability rides on the shared [`MetricsRegistry`]: service-level
//! counters carry `source` and `transport` labels, and the minimal HTTP
//! endpoint exposes `/metrics` (Prometheus text: the service registry
//! merged with every source's pipeline registry relabelled by source id
//! and transport), `/healthz`, and `/sources` (per-source JSON summaries).
//! Everything is `std::net` + threads — no async runtime, same as the
//! rest of the workspace.
//!
//! Shutdown is a graceful drain: [`Server::shutdown`] stops accepting,
//! each reader delivers what it has framed, every session is finalized
//! (emitting its closing `StreamEvent`s), and [`Server::join`] returns the
//! final per-source reports.

pub mod feed;
mod http;
pub mod iec104;

pub use feed::{feed_bytes, feed_path, FeedStats};
pub use iec104::{equivalent_capture, Iec104Conn};
pub use uncharted_nettap::source::{FrameTransport, SourceOutcome};

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use uncharted_analysis::stream::StreamSession;
use uncharted_analysis::PipelineMetrics;
use uncharted_iec104::conn::ConnConfig;
use uncharted_nettap::pcap::ParsedPacket;
use uncharted_nettap::source::PcapFramer;
use uncharted_obs::{Counter, Gauge, MetricsRegistry, MetricsSnapshot};

/// Per-source session tuning, shared by every transport. `window` and
/// `idle_timeout` carry the exact `analyze --follow` semantics into every
/// per-source session.
///
/// Construct with [`SessionConfig::builder`]; the builder mirrors
/// `StreamSession::builder` and `PipelineBuilder` so session wiring reads
/// the same everywhere:
///
/// ```
/// use uncharted_serve::SessionConfig;
///
/// let session = SessionConfig::builder()
///     .window(Some(30.0))
///     .source_timeout(20.0)
///     .batch(256)
///     .build();
/// assert_eq!(session.batch, 256);
/// ```
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Tumbling window length in seconds for per-source windowed output
    /// (`None` = no windowing), as in `analyze --follow --window`.
    pub window: Option<f64>,
    /// Evict a *flow* idle longer than this many seconds inside a session,
    /// as in `analyze --follow --idle-timeout`.
    pub idle_timeout: Option<f64>,
    /// Evict a *source* that delivers no bytes for this many seconds.
    pub source_timeout: f64,
    /// Retain decoded payload bytes inside the session (serve never needs
    /// them; batch analysis does).
    pub retain_payload: bool,
    /// Packets per batch handed from reader to worker.
    pub batch: usize,
    /// Batches buffered per source before the reader blocks (backpressure).
    pub queue_depth: usize,
}

impl Default for SessionConfig {
    fn default() -> SessionConfig {
        SessionConfig {
            window: None,
            idle_timeout: None,
            source_timeout: 30.0,
            retain_payload: false,
            batch: 512,
            queue_depth: 4,
        }
    }
}

impl SessionConfig {
    /// Start a builder from the defaults.
    pub fn builder() -> SessionConfigBuilder {
        SessionConfigBuilder::default()
    }
}

/// Builder for [`SessionConfig`].
#[derive(Debug, Default)]
pub struct SessionConfigBuilder {
    cfg: SessionConfig,
}

impl SessionConfigBuilder {
    /// Tumbling window length in seconds (`None` = no windowing).
    pub fn window(mut self, window: Option<f64>) -> SessionConfigBuilder {
        self.cfg.window = window;
        self
    }

    /// Per-flow idle timeout in seconds (`None` = never evict flows).
    pub fn idle_timeout(mut self, idle_timeout: Option<f64>) -> SessionConfigBuilder {
        self.cfg.idle_timeout = idle_timeout;
        self
    }

    /// Per-source silence timeout in seconds.
    pub fn source_timeout(mut self, source_timeout: f64) -> SessionConfigBuilder {
        self.cfg.source_timeout = source_timeout;
        self
    }

    /// Whether sessions retain decoded payload bytes.
    pub fn retain_payload(mut self, retain: bool) -> SessionConfigBuilder {
        self.cfg.retain_payload = retain;
        self
    }

    /// Packets per reader→worker batch.
    pub fn batch(mut self, batch: usize) -> SessionConfigBuilder {
        self.cfg.batch = batch;
        self
    }

    /// Batches buffered per source before backpressure.
    pub fn queue_depth(mut self, queue_depth: usize) -> SessionConfigBuilder {
        self.cfg.queue_depth = queue_depth;
        self
    }

    /// Finish the builder.
    pub fn build(self) -> SessionConfig {
        self.cfg
    }
}

/// Tuning knobs for the ingest service.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Per-source session tuning (shared by both transports).
    pub session: SessionConfig,
    /// IEC 104 state-machine parameters (t1/t2/t3 timers, k/w windows) for
    /// native-104 sources; pcap sources ignore it.
    pub conn: ConnConfig,
    /// Socket poll granularity in milliseconds: read timeout on source
    /// sockets and accept-loop sleep. Bounds shutdown latency, the
    /// staleness of partially filled batches, and IEC 104 timer precision.
    pub poll_ms: u64,
    /// Print typed events (JSON lines) as they happen.
    pub verbose: bool,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            session: SessionConfig::default(),
            conn: ConnConfig::default(),
            poll_ms: 25,
            verbose: false,
        }
    }
}

/// Which sockets [`Server::bind`] opens. At least one ingest listener
/// (`pcap` or `iec104`) is required; `"127.0.0.1:0"` picks a free port.
#[derive(Debug, Clone, Default)]
pub struct Listeners {
    /// pcap-over-TCP feed listener address.
    pub pcap: Option<String>,
    /// Native IEC 104 listener address.
    pub iec104: Option<String>,
    /// HTTP observability endpoint address.
    pub http: Option<String>,
}

impl Listeners {
    /// No listeners; add with the `with_*` methods.
    pub fn new() -> Listeners {
        Listeners::default()
    }

    /// A pcap-over-TCP ingest listener.
    pub fn pcap(addr: impl Into<String>) -> Listeners {
        Listeners::new().with_pcap(addr)
    }

    /// A native IEC 104 ingest listener.
    pub fn iec104(addr: impl Into<String>) -> Listeners {
        Listeners::new().with_iec104(addr)
    }

    /// Add (or replace) the pcap-over-TCP listener address.
    pub fn with_pcap(mut self, addr: impl Into<String>) -> Listeners {
        self.pcap = Some(addr.into());
        self
    }

    /// Add (or replace) the native IEC 104 listener address.
    pub fn with_iec104(mut self, addr: impl Into<String>) -> Listeners {
        self.iec104 = Some(addr.into());
        self
    }

    /// Add (or replace) the HTTP endpoint address.
    pub fn with_http(mut self, addr: impl Into<String>) -> Listeners {
        self.http = Some(addr.into());
        self
    }
}

/// The wire protocol a source speaks, fixed by which listener accepted it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TransportKind {
    Pcap,
    Iec104,
}

impl TransportKind {
    fn label(self) -> &'static str {
        match self {
            TransportKind::Pcap => "pcap",
            TransportKind::Iec104 => "iec104",
        }
    }
}

/// Lifecycle of one feed: `Active`, or the terminal state mirroring the
/// [`SourceOutcome`] its transport reported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceStatus {
    /// Connected and streaming.
    Active,
    /// Fed a clean end of stream (or a graceful server drain) and was
    /// finalized normally.
    Drained,
    /// Closed for cause: truncated or garbage framing, an IEC 104
    /// state-machine violation, or a socket error. The legitimate prefix
    /// was still finalized.
    Quarantined,
    /// Closed after delivering no bytes for the source timeout.
    Evicted,
}

impl SourceStatus {
    /// Lowercase label used in JSON and metrics.
    pub fn label(self) -> &'static str {
        match self {
            SourceStatus::Active => "active",
            SourceStatus::Drained => SourceOutcome::Drained.label(),
            SourceStatus::Quarantined => "quarantined",
            SourceStatus::Evicted => "evicted",
        }
    }

    /// The terminal status for a transport outcome.
    fn of(outcome: &SourceOutcome) -> SourceStatus {
        match outcome {
            SourceOutcome::Drained => SourceStatus::Drained,
            SourceOutcome::Quarantined(_) => SourceStatus::Quarantined,
            SourceOutcome::Evicted(_) => SourceStatus::Evicted,
        }
    }
}

/// Typed service-level events, one JSON line each under `verbose`.
/// (Per-packet analysis events stay `StreamEvent`s inside each session;
/// these cover source lifecycle, the serve layer's own vocabulary.)
#[derive(Debug, Clone)]
pub enum ServeEvent {
    /// A feed connected and its session opened.
    SourceConnected {
        /// Source id (dense, in accept order across all listeners).
        id: usize,
        /// Transport label (`"pcap"` or `"iec104"`).
        transport: &'static str,
        /// Peer address.
        peer: String,
    },
    /// A feed ended cleanly and its session finalized.
    SourceDrained {
        /// Source id.
        id: usize,
        /// Decoded packets delivered over the source's lifetime.
        packets: u64,
    },
    /// A feed was closed for cause (bad framing, an IEC 104 protocol
    /// fault, truncation, socket error); its legitimate prefix was
    /// finalized.
    SourceQuarantined {
        /// Source id.
        id: usize,
        /// Human-readable cause.
        reason: String,
    },
    /// A silent feed was closed after the source timeout.
    SourceEvicted {
        /// Source id.
        id: usize,
        /// Seconds since the source last delivered bytes.
        idle_secs: f64,
    },
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl ServeEvent {
    /// One JSON object per event, `type`-tagged like `StreamEvent::to_json`.
    pub fn to_json(&self) -> String {
        match self {
            ServeEvent::SourceConnected {
                id,
                transport,
                peer,
            } => format!(
                "{{\"type\":\"source_connected\",\"source\":{id},\"transport\":\"{transport}\",\"peer\":\"{}\"}}",
                json_escape(peer)
            ),
            ServeEvent::SourceDrained { id, packets } => {
                format!("{{\"type\":\"source_drained\",\"source\":{id},\"packets\":{packets}}}")
            }
            ServeEvent::SourceQuarantined { id, reason } => format!(
                "{{\"type\":\"source_quarantined\",\"source\":{id},\"reason\":\"{}\"}}",
                json_escape(reason)
            ),
            ServeEvent::SourceEvicted { id, idle_secs } => format!(
                "{{\"type\":\"source_evicted\",\"source\":{id},\"idle_secs\":{idle_secs:.3}}}"
            ),
        }
    }
}

/// Snapshot of one source for `/sources` and [`Server::reports`].
#[derive(Debug, Clone)]
pub struct SourceReport {
    /// Source id (accept order across all listeners).
    pub id: usize,
    /// Transport label (`"pcap"` or `"iec104"`).
    pub transport: &'static str,
    /// Peer address of the feed socket.
    pub peer: String,
    /// Current lifecycle state.
    pub status: SourceStatus,
    /// Cause, when quarantined.
    pub fault: Option<String>,
    /// Decoded packets delivered to the session so far.
    pub packets: u64,
    /// Batches delivered.
    pub batches: u64,
    /// Analysis `StreamEvent`s the session emitted.
    pub events: u64,
    /// Times the reader blocked on a full queue (backpressure).
    pub backpressure_waits: u64,
    /// Counter fingerprint of the source's pipeline registry, once
    /// finalized — the batch-parity object.
    pub fingerprint: Option<String>,
    /// `StreamSummary::to_json()` of the finalized session.
    pub summary_json: Option<String>,
}

struct Finalized {
    fingerprint: String,
    summary_json: String,
}

struct SourceState {
    id: usize,
    transport: &'static str,
    peer: String,
    status: Mutex<SourceStatus>,
    fault: Mutex<Option<String>>,
    packets: AtomicU64,
    batches: AtomicU64,
    events: AtomicU64,
    backpressure_waits: AtomicU64,
    metrics: Arc<PipelineMetrics>,
    done: Mutex<Option<Finalized>>,
}

impl SourceState {
    fn report(&self) -> SourceReport {
        let done = self.done.lock().expect("source finalization lock");
        SourceReport {
            id: self.id,
            transport: self.transport,
            peer: self.peer.clone(),
            status: *self.status.lock().expect("source status lock"),
            fault: self.fault.lock().expect("source fault lock").clone(),
            packets: self.packets.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            events: self.events.load(Ordering::Relaxed),
            backpressure_waits: self.backpressure_waits.load(Ordering::Relaxed),
            fingerprint: done.as_ref().map(|f| f.fingerprint.clone()),
            summary_json: done.as_ref().map(|f| f.summary_json.clone()),
        }
    }
}

pub(crate) struct Shared {
    cfg: ServeConfig,
    pub(crate) stop: AtomicBool,
    next_id: AtomicUsize,
    registry: Arc<MetricsRegistry>,
    sources: Mutex<Vec<Arc<SourceState>>>,
    events: Mutex<Vec<ServeEvent>>,
    sources_active: Arc<Gauge>,
    sources_opened: Arc<Counter>,
    sources_drained: Arc<Counter>,
    sources_quarantined: Arc<Counter>,
    sources_evicted: Arc<Counter>,
}

impl Shared {
    fn new(cfg: ServeConfig) -> Shared {
        let registry = Arc::new(MetricsRegistry::new());
        let closed = |outcome: &SourceOutcome| {
            registry.counter_with("serve_sources_closed", &[("state", outcome.label())])
        };
        Shared {
            sources_active: registry.gauge("serve_sources_active"),
            sources_opened: registry.counter("serve_sources_opened"),
            sources_drained: closed(&SourceOutcome::Drained),
            sources_quarantined: closed(&SourceOutcome::Quarantined(String::new())),
            sources_evicted: closed(&SourceOutcome::Evicted(0.0)),
            cfg,
            stop: AtomicBool::new(false),
            next_id: AtomicUsize::new(0),
            registry,
            sources: Mutex::new(Vec::new()),
            events: Mutex::new(Vec::new()),
        }
    }

    pub(crate) fn poll(&self) -> Duration {
        Duration::from_millis(self.cfg.poll_ms.max(1))
    }

    fn push_event(&self, ev: ServeEvent) {
        if self.cfg.verbose {
            eprintln!("{}", ev.to_json());
        }
        self.events.lock().expect("serve event lock").push(ev);
    }

    fn count_closed(&self, outcome: &SourceOutcome) {
        match outcome {
            SourceOutcome::Drained => self.sources_drained.inc(),
            SourceOutcome::Quarantined(_) => self.sources_quarantined.inc(),
            SourceOutcome::Evicted(_) => self.sources_evicted.inc(),
        }
    }

    /// Service registry merged with each source's pipeline registry
    /// relabelled by source id and transport — the `/metrics` view.
    /// Per-source histograms and stage samples are dropped: only their
    /// name-keyed identity would collide across sources, and the counters
    /// carry the parity-relevant signal.
    pub(crate) fn metrics_view(&self) -> MetricsSnapshot {
        let mut view = self.registry.snapshot();
        let sources = self.sources.lock().expect("serve sources lock");
        for src in sources.iter() {
            let mut snap = src.metrics.snapshot();
            snap.histograms.clear();
            snap.stages.clear();
            view.merge(
                snap.with_label("source", &src.id.to_string())
                    .with_label("transport", src.transport),
            );
        }
        view
    }

    pub(crate) fn sources_json(&self) -> String {
        let sources = self.sources.lock().expect("serve sources lock");
        let mut out = String::from("[");
        for (i, src) in sources.iter().enumerate() {
            let r = src.report();
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"id\":{},\"transport\":\"{}\",\"peer\":\"{}\",\"status\":\"{}\",\"packets\":{},\"batches\":{},\"events\":{},\"backpressure_waits\":{}",
                r.id,
                r.transport,
                json_escape(&r.peer),
                r.status.label(),
                r.packets,
                r.batches,
                r.events,
                r.backpressure_waits,
            ));
            if let Some(fault) = &r.fault {
                out.push_str(&format!(",\"fault\":\"{}\"", json_escape(fault)));
            }
            match &r.fingerprint {
                Some(fp) => out.push_str(&format!(
                    ",\"finalized\":true,\"fingerprint_fnv64\":\"{:016x}\"",
                    fnv64(fp)
                )),
                None => out.push_str(",\"finalized\":false"),
            }
            out.push('}');
        }
        out.push(']');
        out
    }

    fn reports(&self) -> Vec<SourceReport> {
        let sources = self.sources.lock().expect("serve sources lock");
        sources.iter().map(|s| s.report()).collect()
    }
}

fn fnv64(s: &str) -> u64 {
    use std::hash::Hasher;
    let mut h = uncharted_obs::FnvHasher::default();
    h.write(s.as_bytes());
    h.finish()
}

/// A running ingest service: up to two ingest listeners (pcap-over-TCP
/// and native IEC 104), an optional HTTP endpoint, one reader + worker
/// thread pair per connected source.
pub struct Server {
    shared: Arc<Shared>,
    pcap_addr: Option<SocketAddr>,
    iec104_addr: Option<SocketAddr>,
    http_addr: Option<SocketAddr>,
    accepts: Vec<JoinHandle<()>>,
    http: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind every listener in `listeners` and start accepting sources.
    /// At least one ingest listener (pcap or iec104) is required.
    /// `"127.0.0.1:0"` picks a free port; [`pcap_addr`](Server::pcap_addr)
    /// / [`iec104_addr`](Server::iec104_addr) report the choice.
    pub fn bind(listeners: &Listeners, cfg: ServeConfig) -> std::io::Result<Server> {
        if listeners.pcap.is_none() && listeners.iec104.is_none() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "no ingest listener: set a pcap or iec104 listen address",
            ));
        }
        let shared = Arc::new(Shared::new(cfg));
        let mut accepts: Vec<JoinHandle<()>> = Vec::new();
        match Server::bind_inner(listeners, &shared, &mut accepts) {
            Ok((pcap_addr, iec104_addr, http_addr, http)) => Ok(Server {
                shared,
                pcap_addr,
                iec104_addr,
                http_addr,
                accepts,
                http,
            }),
            Err(e) => {
                // A later bind failed after earlier accept threads started:
                // stop them before reporting the error.
                shared.stop.store(true, Ordering::SeqCst);
                for h in accepts {
                    let _ = h.join();
                }
                Err(e)
            }
        }
    }

    #[allow(clippy::type_complexity)]
    fn bind_inner(
        listeners: &Listeners,
        shared: &Arc<Shared>,
        accepts: &mut Vec<JoinHandle<()>>,
    ) -> std::io::Result<(
        Option<SocketAddr>,
        Option<SocketAddr>,
        Option<SocketAddr>,
        Option<JoinHandle<()>>,
    )> {
        let mut bind_ingest = |addr: &str, kind: TransportKind| -> std::io::Result<SocketAddr> {
            let listener = TcpListener::bind(addr)?;
            listener.set_nonblocking(true)?;
            let local = listener.local_addr()?;
            let shared = Arc::clone(shared);
            accepts.push(thread::spawn(move || accept_loop(listener, shared, kind)));
            Ok(local)
        };
        let pcap_addr = match &listeners.pcap {
            Some(addr) => Some(bind_ingest(addr, TransportKind::Pcap)?),
            None => None,
        };
        let iec104_addr = match &listeners.iec104 {
            Some(addr) => Some(bind_ingest(addr, TransportKind::Iec104)?),
            None => None,
        };
        let (http, http_addr) = match &listeners.http {
            Some(addr) => {
                let http_listener = TcpListener::bind(addr)?;
                http_listener.set_nonblocking(true)?;
                let http_addr = http_listener.local_addr()?;
                let shared = Arc::clone(shared);
                (
                    Some(thread::spawn(move || {
                        http::serve_http(http_listener, shared)
                    })),
                    Some(http_addr),
                )
            }
            None => (None, None),
        };
        Ok((pcap_addr, iec104_addr, http_addr, http))
    }

    /// Address of the pcap-over-TCP listener, when one was bound.
    pub fn pcap_addr(&self) -> Option<SocketAddr> {
        self.pcap_addr
    }

    /// Address of the native IEC 104 listener, when one was bound.
    pub fn iec104_addr(&self) -> Option<SocketAddr> {
        self.iec104_addr
    }

    /// Address of the HTTP endpoint, when one was bound.
    pub fn http_addr(&self) -> Option<SocketAddr> {
        self.http_addr
    }

    /// The `/metrics` body: service registry merged with every source's
    /// relabelled pipeline registry, rendered as Prometheus text.
    pub fn metrics_prometheus(&self) -> String {
        self.shared.metrics_view().to_prometheus()
    }

    /// Current per-source reports (sources still streaming show
    /// `Active` with no fingerprint yet).
    pub fn reports(&self) -> Vec<SourceReport> {
        self.shared.reports()
    }

    /// Every service-level event so far, in order.
    pub fn events(&self) -> Vec<ServeEvent> {
        self.shared.events.lock().expect("serve event lock").clone()
    }

    /// Begin a graceful drain: stop accepting, let every reader flush what
    /// it has framed, finalize every session. Returns immediately; use
    /// [`join`](Server::join) to wait for completion.
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
    }

    /// Drain and wait until every source is finalized; returns the final
    /// per-source reports.
    pub fn join(mut self) -> Vec<SourceReport> {
        self.shutdown();
        for h in self.accepts.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.http.take() {
            let _ = h.join();
        }
        self.shared.reports()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
        for h in self.accepts.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.http.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>, kind: TransportKind) {
    let mut sources: Vec<JoinHandle<()>> = Vec::new();
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, peer)) => {
                let id = shared.next_id.fetch_add(1, Ordering::SeqCst);
                let state = Arc::new(SourceState {
                    id,
                    transport: kind.label(),
                    peer: peer.to_string(),
                    status: Mutex::new(SourceStatus::Active),
                    fault: Mutex::new(None),
                    packets: AtomicU64::new(0),
                    batches: AtomicU64::new(0),
                    events: AtomicU64::new(0),
                    backpressure_waits: AtomicU64::new(0),
                    metrics: PipelineMetrics::new(),
                    done: Mutex::new(None),
                });
                shared
                    .sources
                    .lock()
                    .expect("serve sources lock")
                    .push(Arc::clone(&state));
                shared.sources_opened.inc();
                shared.sources_active.inc();
                shared.push_event(ServeEvent::SourceConnected {
                    id,
                    transport: kind.label(),
                    peer: peer.to_string(),
                });
                let shared = Arc::clone(&shared);
                sources.push(thread::spawn(move || {
                    run_source(stream, state, shared, kind)
                }));
            }
            // WouldBlock is the idle case; any transient accept error gets
            // the same backoff rather than a hot spin.
            Err(_) => thread::sleep(shared.poll()),
        }
    }
    // Graceful drain: every reader sees the stop flag within one poll
    // interval, flushes, and finalizes its session before we return.
    for h in sources {
        let _ = h.join();
    }
}

/// Instantiate the transport the accepting listener dictates and run the
/// source to completion.
fn run_source(stream: TcpStream, state: Arc<SourceState>, shared: Arc<Shared>, kind: TransportKind) {
    match kind {
        TransportKind::Pcap => run_source_with(PcapFramer::new(), stream, state, shared),
        TransportKind::Iec104 => {
            let conn = Iec104Conn::new(shared.cfg.conn);
            run_source_with(conn, stream, state, shared)
        }
    }
}

/// One source, end to end: reader loop on this thread, session worker on
/// a sibling, joined before the terminal status is recorded — so a
/// non-`Active` status always implies the fingerprint is available.
fn run_source_with<T: FrameTransport>(
    mut transport: T,
    stream: TcpStream,
    state: Arc<SourceState>,
    shared: Arc<Shared>,
) {
    let _ = stream.set_read_timeout(Some(shared.poll()));
    let (tx, rx) = mpsc::sync_channel::<Vec<ParsedPacket>>(shared.cfg.session.queue_depth.max(1));
    let worker = {
        let state = Arc::clone(&state);
        let shared = Arc::clone(&shared);
        thread::spawn(move || run_worker(rx, state, shared))
    };
    let outcome = read_loop(stream, &mut transport, &tx, &state, &shared);
    drop(tx);
    let _ = worker.join();

    shared.count_closed(&outcome);
    let status = SourceStatus::of(&outcome);
    let event = match outcome {
        SourceOutcome::Drained => ServeEvent::SourceDrained {
            id: state.id,
            packets: state.packets.load(Ordering::Relaxed),
        },
        SourceOutcome::Quarantined(reason) => {
            *state.fault.lock().expect("source fault lock") = Some(reason.clone());
            ServeEvent::SourceQuarantined {
                id: state.id,
                reason,
            }
        }
        SourceOutcome::Evicted(idle_secs) => ServeEvent::SourceEvicted {
            id: state.id,
            idle_secs,
        },
    };
    *state.status.lock().expect("source status lock") = status;
    shared.sources_active.dec();
    shared.push_event(event);
}

/// Write the transport's queued reply bytes (IEC 104 confirmations and
/// S-frames; empty for pcap) back to the peer.
fn write_back<T: FrameTransport>(stream: &mut TcpStream, transport: &mut T) -> std::io::Result<()> {
    let bytes = transport.take_tx();
    if bytes.is_empty() {
        return Ok(());
    }
    stream.write_all(&bytes)
}

fn read_loop<T: FrameTransport>(
    mut stream: TcpStream,
    transport: &mut T,
    tx: &SyncSender<Vec<ParsedPacket>>,
    state: &SourceState,
    shared: &Shared,
) -> SourceOutcome {
    let session = &shared.cfg.session;
    let batch_size = session.batch.max(1);
    let mut pending: Vec<ParsedPacket> = Vec::new();
    let mut tmp = vec![0u8; 16 * 1024];
    let opened = Instant::now();
    let mut last_data = Instant::now();
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            // Server-initiated drain: whatever framed completely is
            // delivered; a partial record at this point is our doing, not
            // the feed's.
            flush(&mut pending, tx, state);
            return SourceOutcome::Drained;
        }
        let now = opened.elapsed().as_secs_f64();
        match stream.read(&mut tmp) {
            Ok(0) => {
                let outcome = transport.on_eof(now, &mut pending);
                flush(&mut pending, tx, state);
                return outcome;
            }
            Ok(n) => {
                last_data = Instant::now();
                match transport.on_bytes(&tmp[..n], now, &mut pending) {
                    Ok(_) => {
                        if let Err(e) = write_back(&mut stream, transport) {
                            flush(&mut pending, tx, state);
                            return SourceOutcome::Quarantined(format!("write error: {e}"));
                        }
                        while pending.len() >= batch_size {
                            let rest = pending.split_off(batch_size);
                            let batch = std::mem::replace(&mut pending, rest);
                            if !send_batch(tx, batch, state) {
                                return SourceOutcome::Drained;
                            }
                        }
                    }
                    Err(reason) => {
                        // Frames decoded before the fault are legitimate;
                        // deliver them, then close this source alone. Best
                        // effort on any reply bytes already queued.
                        let _ = write_back(&mut stream, transport);
                        flush(&mut pending, tx, state);
                        return SourceOutcome::Quarantined(reason);
                    }
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // Poll tick: drive transport timers (IEC 104 t1/t2/t3),
                // bound the staleness of a partial batch, then check the
                // idle clock.
                match transport.on_tick(now, &mut pending) {
                    Ok(()) => {
                        if let Err(e) = write_back(&mut stream, transport) {
                            flush(&mut pending, tx, state);
                            return SourceOutcome::Quarantined(format!("write error: {e}"));
                        }
                    }
                    Err(reason) => {
                        let _ = write_back(&mut stream, transport);
                        flush(&mut pending, tx, state);
                        return SourceOutcome::Quarantined(reason);
                    }
                }
                flush(&mut pending, tx, state);
                let idle = last_data.elapsed().as_secs_f64();
                if idle >= session.source_timeout {
                    return SourceOutcome::Evicted(idle);
                }
            }
            Err(e) => {
                flush(&mut pending, tx, state);
                return SourceOutcome::Quarantined(format!("read error: {e}"));
            }
        }
    }
}

/// Deliver a full batch over the bounded queue, counting backpressure
/// blocks. `false` means the worker is gone (only during teardown).
fn send_batch(
    tx: &SyncSender<Vec<ParsedPacket>>,
    batch: Vec<ParsedPacket>,
    state: &SourceState,
) -> bool {
    match tx.try_send(batch) {
        Ok(()) => true,
        Err(TrySendError::Full(batch)) => {
            state.backpressure_waits.fetch_add(1, Ordering::Relaxed);
            tx.send(batch).is_ok()
        }
        Err(TrySendError::Disconnected(_)) => false,
    }
}

fn flush(pending: &mut Vec<ParsedPacket>, tx: &SyncSender<Vec<ParsedPacket>>, state: &SourceState) {
    if !pending.is_empty() {
        send_batch(tx, std::mem::take(pending), state);
    }
}

fn run_worker(rx: Receiver<Vec<ParsedPacket>>, state: Arc<SourceState>, shared: Arc<Shared>) {
    let mut session = StreamSession::builder()
        .window(shared.cfg.session.window)
        .idle_timeout(shared.cfg.session.idle_timeout)
        .retain_payload(shared.cfg.session.retain_payload)
        .metrics(Arc::clone(&state.metrics))
        .build();
    let label = state.id.to_string();
    let packets_in = shared.registry.counter_with(
        "serve_source_packets",
        &[("source", &label), ("transport", state.transport)],
    );
    let batches_in = shared.registry.counter_with(
        "serve_source_batches",
        &[("source", &label), ("transport", state.transport)],
    );
    for batch in rx {
        state
            .packets
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        state.batches.fetch_add(1, Ordering::Relaxed);
        packets_in.add(batch.len() as u64);
        batches_in.inc();
        let events = session.push_batch(&batch);
        state
            .events
            .fetch_add(events.len() as u64, Ordering::Relaxed);
        if shared.cfg.verbose {
            for ev in &events {
                println!("{{\"source\":{},\"event\":{}}}", state.id, ev.to_json());
            }
        }
    }
    let (summary, events) = session.finish();
    state
        .events
        .fetch_add(events.len() as u64, Ordering::Relaxed);
    if shared.cfg.verbose {
        for ev in &events {
            println!("{{\"source\":{},\"event\":{}}}", state.id, ev.to_json());
        }
    }
    *state.done.lock().expect("source finalization lock") = Some(Finalized {
        fingerprint: state.metrics.snapshot().counter_fingerprint(),
        summary_json: summary.to_json(),
    });
}
