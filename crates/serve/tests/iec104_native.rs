//! Loopback gates for native IEC 104 ingestion.
//!
//! Three contracts from the transport design:
//!
//! 1. **Live/batch parity** — a scadasim-driven IEC 104 client session
//!    into `--listen-iec104` finalizes to a counter fingerprint
//!    bit-identical to batch analysis of the equivalent capture
//!    (`equivalent_capture` over the same client byte stream), and the
//!    HTTP endpoint labels the source with its transport.
//! 2. **Handshake refusal** — I-frames before STARTDT quarantine the
//!    source; no data is accepted.
//! 3. **Timer faults** — a peer that lets our TESTFR keep-alive expire is
//!    quarantined with the t1 vocabulary, not silently evicted.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use uncharted_analysis::markov::ChainCensus;
use uncharted_analysis::{session, Dataset, ExecContext, ExecPolicy};
use uncharted_iec104::apci::{Apci, UFunction, CONTROL_LEN, START_BYTE};
use uncharted_iec104::conn::ConnConfig;
use uncharted_scadasim::{ReplayPlan, Scenario, Simulation, Year};
use uncharted_serve::{
    equivalent_capture, Listeners, ServeConfig, Server, SessionConfig, SourceStatus,
};

/// Timers far beyond the test's runtime: the session must be driven by
/// frame counts alone (w-window S-frames), never by wall-clock timers, so
/// the live session and the offline replay see identical state machines.
fn inert_timers() -> ConnConfig {
    ConnConfig {
        t1: 1e6,
        t2: 1e6,
        t3: 1e6,
        ..ConnConfig::default()
    }
}

fn test_config(conn: ConnConfig) -> ServeConfig {
    ServeConfig {
        session: SessionConfig::builder()
            .source_timeout(20.0)
            .batch(256)
            .build(),
        conn,
        poll_ms: 5,
        ..ServeConfig::default()
    }
}

fn wait_terminal(server: &Server, n: usize) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let done = server
            .reports()
            .iter()
            .filter(|r| r.status != SourceStatus::Active && r.fingerprint.is_some())
            .count();
        if done >= n {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {n} terminal sources; reports: {:?}",
            server.reports()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn http_get(addr: SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("http connect");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: serve\r\nConnection: close\r\n\r\n"
    )
    .expect("http request");
    let mut out = String::new();
    stream.read_to_string(&mut out).expect("http response");
    out
}

fn http_body(response: &str) -> &str {
    response
        .split_once("\r\n\r\n")
        .map(|(_, body)| body)
        .unwrap_or("")
}

fn u_frame(func: UFunction) -> Vec<u8> {
    let mut frame = vec![START_BYTE, CONTROL_LEN as u8];
    frame.extend_from_slice(&Apci::U(func).encode());
    frame
}

fn bare_i_frame(send_seq: u16) -> Vec<u8> {
    let mut frame = vec![START_BYTE, CONTROL_LEN as u8];
    frame.extend_from_slice(
        &Apci::I {
            send_seq,
            recv_seq: 0,
        }
        .encode(),
    );
    frame
}

#[test]
fn native_session_hits_batch_parity_of_the_equivalent_capture() {
    let set = Simulation::new(Scenario::small(Year::Y1, 77, 40.0)).run();
    let plan = ReplayPlan::from_capture(&set.merged());
    assert!(plan.i_frames() > 500, "scenario too small to be a gate");

    // Batch reference: the offline replay of the exact client bytes,
    // through the same transport code, into the batch pipeline.
    let packets =
        equivalent_capture(&plan.byte_stream(), inert_timers()).expect("clean offline replay");
    assert!(packets.len() > plan.i_frames(), "replies synthesized too");
    let ctx = ExecContext::new(ExecPolicy::Sequential);
    let ds = Dataset::ingest(packets, &ctx);
    let _ = session::extract(&ds, &ctx);
    let _ = ChainCensus::build(&ds, &ctx);
    let reference = ctx.metrics.snapshot().counter_fingerprint();

    let server = Server::bind(
        &Listeners::iec104("127.0.0.1:0").with_http("127.0.0.1:0"),
        test_config(inert_timers()),
    )
    .expect("bind loopback");
    let addr = server.iec104_addr().expect("iec104 listener bound");
    assert!(server.pcap_addr().is_none());

    let stats = plan.connect_and_replay(addr, None).expect("live replay");
    assert_eq!(stats.frames as usize, plan.i_frames() + 1);
    assert!(
        stats.reply_bytes >= 6,
        "server never confirmed STARTDT: {stats:?}"
    );

    wait_terminal(&server, 1);

    // Transport labels on both HTTP views.
    let http = server.http_addr().expect("http bound");
    let metrics = http_body(&http_get(http, "/metrics")).to_string();
    assert!(
        metrics.contains("transport=\"iec104\""),
        "metrics missing transport label:\n{metrics}"
    );
    let sources = http_body(&http_get(http, "/sources")).to_string();
    assert!(
        sources.contains("\"transport\":\"iec104\""),
        "sources JSON missing transport: {sources}"
    );

    let reports = server.join();
    assert_eq!(reports.len(), 1);
    let r = &reports[0];
    assert_eq!(r.transport, "iec104");
    assert_eq!(r.status, SourceStatus::Drained, "fault: {:?}", r.fault);
    assert_eq!(
        r.fingerprint.as_deref(),
        Some(reference.as_str()),
        "live native-104 session diverged from batch analysis of the equivalent capture"
    );
}

#[test]
fn i_frames_before_startdt_are_refused() {
    let server = Server::bind(
        &Listeners::iec104("127.0.0.1:0"),
        test_config(inert_timers()),
    )
    .expect("bind loopback");
    let addr = server.iec104_addr().expect("iec104 listener bound");

    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(&bare_i_frame(0)).expect("send I-frame");

    wait_terminal(&server, 1);
    let reports = server.join();
    assert_eq!(reports.len(), 1);
    let r = &reports[0];
    assert_eq!(r.status, SourceStatus::Quarantined);
    let fault = r.fault.as_deref().expect("quarantine cause");
    assert!(fault.contains("STARTDT"), "unexpected fault: {fault}");
    // No data was accepted into the session: the offending frame is never
    // synthesized, and no batch crossed to the worker.
    assert_eq!(r.packets, 0, "refused handshake must not admit packets");
}

#[test]
fn unanswered_testfr_keepalive_is_quarantined() {
    let conn = ConnConfig {
        t3: 0.2,
        t1: 0.3,
        ..ConnConfig::default()
    };
    let server =
        Server::bind(&Listeners::iec104("127.0.0.1:0"), test_config(conn)).expect("bind loopback");
    let addr = server.iec104_addr().expect("iec104 listener bound");

    // Handshake, then go silent without answering the keep-alive probe.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(&u_frame(UFunction::StartDtAct))
        .expect("send STARTDT");

    wait_terminal(&server, 1);
    let reports = server.join();
    assert_eq!(reports.len(), 1);
    let r = &reports[0];
    assert_eq!(
        r.status,
        SourceStatus::Quarantined,
        "expected TESTFR teardown, got {:?} (fault {:?})",
        r.status,
        r.fault
    );
    let fault = r.fault.as_deref().expect("quarantine cause");
    assert!(fault.contains("TESTFR"), "unexpected fault: {fault}");
    // The probe reached the wire before the teardown.
    let mut reply = Vec::new();
    stream.read_to_end(&mut reply).expect("drain replies");
    let probe = u_frame(UFunction::TestFrAct);
    assert!(
        reply
            .windows(probe.len())
            .any(|w| w == probe.as_slice()),
        "no TESTFR act on the wire: {reply:02x?}"
    );
}
