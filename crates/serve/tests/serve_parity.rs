//! Loopback integration gates for the ingest service.
//!
//! Two contracts from the serve design:
//!
//! 1. **Concurrent parity** — N feeds of the same capture, served
//!    concurrently over loopback TCP, each finalize to a per-source
//!    counter fingerprint bit-identical to a batch `analyze` of that
//!    capture, and the HTTP endpoint reports all of it.
//! 2. **Fault isolation** — a feed killed mid-record (and one sending
//!    outright garbage) is quarantined alone; healthy concurrent feeds
//!    still hit exact batch parity.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use uncharted_analysis::markov::ChainCensus;
use uncharted_analysis::{session, Dataset, ExecContext, ExecPolicy};
use uncharted_nettap::pcap::ParsedPacket;
use uncharted_nettap::source::{drain, PcapStreamSource};
use uncharted_scadasim::{Scenario, Simulation, Year};
use uncharted_serve::{feed_bytes, Listeners, ServeConfig, Server, SessionConfig, SourceStatus};

/// A seeded campaign as pcap bytes, timestamp-sorted — what a tap would
/// ship to the server.
fn scenario_pcap() -> Vec<u8> {
    let set = Simulation::new(Scenario::small(Year::Y1, 77, 40.0)).run();
    let mut buf = Vec::new();
    set.merged().write_pcap(&mut buf).expect("write pcap");
    buf
}

/// The batch `analyze` reference over the same bytes the server will see:
/// re-read (so timestamps carry pcap quantisation), ingest, run the
/// session and chain stages, fingerprint the counters.
fn batch_fingerprint(pcap: &[u8]) -> (String, Vec<ParsedPacket>) {
    let mut src = PcapStreamSource::new(pcap).expect("valid pcap");
    let packets = drain(&mut src, 4096).expect("clean capture");
    let ctx = ExecContext::new(ExecPolicy::Sequential);
    let ds = Dataset::ingest(packets.clone(), &ctx);
    let _ = session::extract(&ds, &ctx);
    let _ = ChainCensus::build(&ds, &ctx);
    (ctx.metrics.snapshot().counter_fingerprint(), packets)
}

fn test_config() -> ServeConfig {
    ServeConfig {
        session: SessionConfig::builder()
            .window(Some(30.0))
            .source_timeout(20.0)
            .batch(256)
            .queue_depth(4)
            .build(),
        poll_ms: 5,
        ..ServeConfig::default()
    }
}

/// Wait until `n` sources are finalized (fingerprint present).
fn wait_finalized(server: &Server, n: usize) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let done = server
            .reports()
            .iter()
            .filter(|r| r.fingerprint.is_some())
            .count();
        if done >= n {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {n} finalized sources; reports: {:?}",
            server.reports()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn http_get(addr: SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("http connect");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: serve\r\nConnection: close\r\n\r\n"
    )
    .expect("http request");
    let mut out = String::new();
    stream.read_to_string(&mut out).expect("http response");
    out
}

fn http_body(response: &str) -> &str {
    response
        .split_once("\r\n\r\n")
        .map(|(_, body)| body)
        .unwrap_or("")
}

#[test]
fn concurrent_feeds_hit_batch_parity_and_http_reports_them() {
    const FEEDS: usize = 4;
    let pcap = scenario_pcap();
    let (reference, packets) = batch_fingerprint(&pcap);
    assert!(packets.len() > 1000, "scenario too small to be a gate");

    let server = Server::bind(
        &Listeners::pcap("127.0.0.1:0").with_http("127.0.0.1:0"),
        test_config(),
    )
    .expect("bind loopback");
    let feed_addr = server.pcap_addr().expect("pcap listener bound");

    let feeders: Vec<_> = (0..FEEDS)
        .map(|_| {
            let pcap = pcap.clone();
            std::thread::spawn(move || feed_bytes(&pcap, feed_addr, None).expect("feed"))
        })
        .collect();
    for f in feeders {
        let stats = f.join().expect("feeder thread");
        assert_eq!(stats.bytes, pcap.len() as u64);
        assert!(stats.records as usize >= packets.len());
    }
    wait_finalized(&server, FEEDS);

    // Every source: drained cleanly, bit-identical to batch.
    let reports = server.reports();
    assert_eq!(reports.len(), FEEDS);
    for r in &reports {
        assert_eq!(
            r.status,
            SourceStatus::Drained,
            "source {}: {:?}",
            r.id,
            r.fault
        );
        assert_eq!(r.packets as usize, packets.len(), "source {}", r.id);
        assert_eq!(
            r.fingerprint.as_deref(),
            Some(reference.as_str()),
            "source {} fingerprint diverged from batch analyze",
            r.id
        );
        let summary = r.summary_json.as_deref().expect("finalized summary");
        assert!(summary.contains("\"packets\""), "summary JSON: {summary}");
    }

    // HTTP endpoint: liveness, Prometheus metrics, per-source JSON.
    let http = server.http_addr().expect("http bound");
    let health = http_get(http, "/healthz");
    assert!(health.starts_with("HTTP/1.1 200"), "healthz: {health}");
    assert_eq!(http_body(&health), "ok\n");

    let metrics = http_get(http, "/metrics");
    assert!(metrics.starts_with("HTTP/1.1 200"), "metrics: {metrics}");
    let body = http_body(&metrics);
    assert!(
        body.contains("serve_sources_opened 4"),
        "metrics body missing open count:\n{body}"
    );
    assert!(
        body.contains("source=\"0\"") && body.contains("source=\"3\""),
        "metrics body missing per-source labels:\n{body}"
    );
    assert!(
        body.contains("transport=\"pcap\""),
        "metrics body missing transport label:\n{body}"
    );
    // Prometheus text validity: every non-comment line is `name value`
    // with a numeric value.
    for line in body
        .lines()
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
    {
        let value = line.rsplit(' ').next().unwrap_or("");
        assert!(
            value.parse::<f64>().is_ok(),
            "unparseable sample line: {line}"
        );
    }

    let sources = http_get(http, "/sources");
    let body = http_body(&sources);
    assert!(
        body.contains("\"status\":\"drained\"") && body.contains("\"finalized\":true"),
        "sources JSON: {body}"
    );
    assert!(
        body.contains("\"transport\":\"pcap\""),
        "sources JSON missing transport: {body}"
    );
    assert!(http_get(http, "/nope").starts_with("HTTP/1.1 404"));

    // Graceful shutdown: join returns the same finalized reports, and the
    // event log shows each source connect and drain exactly once.
    let final_reports = server.join();
    assert_eq!(final_reports.len(), FEEDS);
    assert!(final_reports
        .iter()
        .all(|r| r.status == SourceStatus::Drained));
}

#[test]
fn killed_feed_is_quarantined_without_touching_the_others() {
    let pcap = scenario_pcap();
    let (reference, _) = batch_fingerprint(&pcap);

    let server = Server::bind(&Listeners::pcap("127.0.0.1:0"), test_config()).expect("bind loopback");
    let feed_addr = server.pcap_addr().expect("pcap listener bound");

    // Two healthy feeds plus one killed mid-record: the truncation point
    // is inside a record body, exactly what a SIGKILLed tap leaves on the
    // wire. And one feeding outright garbage (wrong magic).
    let cut = {
        // Past the global header and first record header, mid-body.
        let len = pcap.len();
        len - (len - 24) / 3 - 7
    };
    assert!(cut > 48 && cut < pcap.len());

    let healthy: Vec<_> = (0..2)
        .map(|_| {
            let pcap = pcap.clone();
            std::thread::spawn(move || feed_bytes(&pcap, feed_addr, None).expect("feed"))
        })
        .collect();
    let killed = {
        let prefix = pcap[..cut].to_vec();
        std::thread::spawn(move || {
            let mut stream = TcpStream::connect(feed_addr).expect("connect");
            stream.write_all(&prefix).expect("send prefix");
            // Dropping the socket here is the mid-stream kill.
        })
    };
    let garbage = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(feed_addr).expect("connect");
        stream.write_all(&[0u8; 64]).expect("send garbage");
    });
    for f in healthy {
        f.join().expect("healthy feeder");
    }
    killed.join().expect("killed feeder");
    garbage.join().expect("garbage feeder");

    wait_finalized(&server, 4);
    let reports = server.join();
    assert_eq!(reports.len(), 4);

    let quarantined: Vec<_> = reports
        .iter()
        .filter(|r| r.status == SourceStatus::Quarantined)
        .collect();
    assert_eq!(quarantined.len(), 2, "reports: {reports:?}");
    for q in &quarantined {
        let fault = q.fault.as_deref().expect("quarantine cause");
        assert!(
            fault.contains("mid-record") || fault.contains("framing"),
            "unexpected fault: {fault}"
        );
        // Quarantine still finalizes the legitimate prefix.
        assert!(q.fingerprint.is_some());
    }

    // The healthy feeds never noticed: exact batch parity.
    let drained: Vec<_> = reports
        .iter()
        .filter(|r| r.status == SourceStatus::Drained)
        .collect();
    assert_eq!(drained.len(), 2, "reports: {reports:?}");
    for r in drained {
        assert_eq!(
            r.fingerprint.as_deref(),
            Some(reference.as_str()),
            "healthy source {} diverged after a sibling was quarantined",
            r.id
        );
    }
}
