//! The §6.4 physics-through-the-tap story: watch an unmet-load event and a
//! generator synchronisation purely from network traffic, as the paper's
//! Figs. 18–21 do.
//!
//! ```sh
//! cargo run --release --example agc_event
//! ```

use uncharted::analysis::dpi::{self, PhysicalKind, SignatureMachine};
use uncharted::analysis::report::sparkline;
use uncharted::nettap::ipv4::addr;
use uncharted::{ExecPolicy, Pipeline, Scenario, Simulation, Year};

fn main() {
    // 300 s Year-1 window; the scenario scripts a generator-online sequence
    // at 15 % of the window and an unmet-load event at 55–85 %.
    let set = Simulation::new(Scenario::small(Year::Y1, 42, 300.0)).run();
    let p = Pipeline::builder().exec(ExecPolicy::Sequential).build(&set);
    let series = p.physical_series();

    // --- Fig. 18/19: frequency excursion + AGC response ---------------
    let freq = series
        .iter()
        .filter(|s| !s.from_server && s.infer_kind() == PhysicalKind::Frequency)
        .max_by_key(|s| s.samples.len())
        .expect("frequency series");
    println!("system frequency seen through the tap (Fig. 18 analogue):");
    println!("  {}", sparkline(&freq.samples, 72));

    let agc = series
        .iter()
        .filter(|s| s.from_server && s.samples.len() >= 2)
        .max_by_key(|s| s.samples.len())
        .expect("AGC set point series");
    println!("\nAGC set point commands to one generator (Fig. 19 bottom):");
    println!("  {}", sparkline(&agc.samples, 72));

    // Variance screen: which series were "changing more than usual"?
    let mut flagged: Vec<(String, usize)> = Vec::new();
    for s in &series {
        let events = dpi::variance_events(s, 20.0, 3.0);
        if !events.is_empty() {
            flagged.push((
                format!(
                    "{} ioa {}",
                    uncharted::nettap::ipv4::fmt_addr(s.station_ip),
                    s.ioa
                ),
                events.len(),
            ));
        }
    }
    println!(
        "\nnormalised-variance screen flagged {} series, e.g.:",
        flagged.len()
    );
    for (name, n) in flagged.iter().take(5) {
        println!("  {name} ({n} windows)");
    }

    // --- Fig. 20/21: the generator-online signature --------------------
    let o40 = addr(10, 1, 16, 40);
    let find = |ioa: u32| {
        series
            .iter()
            .find(|s| s.station_ip == o40 && s.ioa == ioa && !s.from_server)
            .expect("O40 series")
    };
    let voltage = find(702);
    let power = find(705);
    let breaker = find(800);
    println!("\nO40 generator bus voltage (Fig. 20 top):");
    println!("  {}", sparkline(&voltage.samples, 72));
    println!("O40 active power (Fig. 20 bottom):");
    println!("  {}", sparkline(&power.samples, 72));
    println!(
        "O40 breaker status changes: {:?}",
        breaker
            .samples
            .iter()
            .map(|(t, v)| format!("t={t:.0}s -> {v}"))
            .collect::<Vec<_>>()
    );

    let rows = dpi::align_series_defaults(&[voltage, breaker, power], 2.0, &[0.0, 1.0, 0.0]);
    let samples: Vec<(f64, u8, f64)> = rows.iter().map(|(_, v)| (v[0], v[1] as u8, v[2])).collect();
    let mut machine = SignatureMachine::new(130.0);
    for (i, &(v, b, pw)) in samples.iter().enumerate() {
        machine.feed(i, v, b, pw);
    }
    println!("\nFig. 21 signature machine transitions:");
    for (idx, state) in &machine.transitions {
        println!("  sample {idx:>3}: -> {state:?}");
    }
    println!(
        "violations: {} — the observed activation {} the expected signature",
        machine.violations,
        if machine.violations == 0 {
            "FOLLOWS"
        } else {
            "VIOLATES"
        }
    );
}
