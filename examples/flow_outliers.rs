//! The §6.2 surprise: a SCADA network where most TCP flows live for less
//! than a second, because misconfigured RTUs reset every backup-connection
//! attempt (Fig. 9) — plus the session clustering of Figs. 10–11 that
//! isolates the C2→O30 outlier.
//!
//! ```sh
//! cargo run --release --example flow_outliers
//! ```

use uncharted::analysis::flowstats::{duration_histogram, reject_census};
use uncharted::analysis::report::{ip, pct, Table};
use uncharted::{ExecPolicy, Pipeline, Scenario, Simulation, Year};

fn main() {
    // A longer window so the O30 secondary (430 s keep-alive gap) shows up.
    let set = Simulation::new(Scenario::small(Year::Y1, 42, 900.0)).run();
    let p = Pipeline::builder().exec(ExecPolicy::Sequential).build(&set);

    // --- Table 3 ---------------------------------------------------------
    let stats = p.flow_stats();
    let mut t = Table::new(["Metric", "Value", "Proportion"]);
    t.row([
        "Less-than-one-second short-lived flows".into(),
        stats.short_sub_second.to_string(),
        pct(stats.sub_second_fraction()),
    ]);
    t.row([
        "Longer-than-one-second short-lived flows".into(),
        stats.short_longer.to_string(),
        pct(1.0 - stats.sub_second_fraction()),
    ]);
    t.row([
        "Short-lived flows".to_string(),
        stats.short_lived().to_string(),
        pct(stats.short_fraction()),
    ]);
    t.row([
        "Long-lived flows".to_string(),
        stats.long_lived.to_string(),
        pct(1.0 - stats.short_fraction()),
    ]);
    println!("TCP flow lifetimes (paper Table 3):\n{}", t.render());

    // --- Fig. 8: duration histogram --------------------------------------
    println!("short-lived flow durations (log10 buckets, Fig. 8):");
    for (bucket, count) in duration_histogram(&p.dataset.flows) {
        let label = if bucket == i32::MIN {
            "     0s".to_string()
        } else {
            format!("10^{bucket:>3}s")
        };
        println!(
            "  {label}  {}",
            "#".repeat((count as f64).log2().max(1.0) as usize * 2)
        );
    }

    // --- Fig. 9: who resets? ---------------------------------------------
    println!("\nconnections repeatedly reset by the outstation (Fig. 9):");
    let mut t = Table::new(["Pair", "Reset connections"]);
    for (key, count) in reject_census(&p.dataset.flows).into_iter().take(8) {
        t.row([key.to_string(), count.to_string()]);
    }
    println!("{}", t.render());

    // --- Fig. 10/11: session clusters -------------------------------------
    let report = p.cluster_sessions(7);
    println!("session clustering at the paper's K=5 (Fig. 11):");
    let mut t = Table::new(["Cluster", "Sessions", "mean dt [s]", "%I", "%S", "%U"]);
    for (c, mean) in report.cluster_means.iter().enumerate() {
        t.row([
            c.to_string(),
            report.k5.cluster_sizes()[c].to_string(),
            format!("{:.1}", mean[0]),
            pct(mean[2]),
            pct(mean[3]),
            pct(mean[4]),
        ]);
    }
    println!("{}", t.render());

    // The outlier: the largest mean inter-arrival cluster and O30's place.
    let sessions = p.sessions();
    let slowest = (0..report.cluster_means.len())
        .max_by(|&a, &b| {
            report.cluster_means[a][0]
                .partial_cmp(&report.cluster_means[b][0])
                .unwrap()
        })
        .unwrap();
    println!("slowest cluster ({slowest}) members — the paper's cluster 0 outliers:");
    for &i in &report.k5.members(slowest) {
        let s = &sessions[i];
        let f = s.features();
        println!(
            "  {} -> {}  (mean dt {:.0}s over {} packets)",
            ip(s.src),
            ip(s.dst),
            f.mean_interarrival,
            s.times.len()
        );
    }
    println!("(10.1.11.30 is O30 — its T3 is misconfigured to 430 s, an order of\n magnitude above the 30 s the other secondaries use)");
}
