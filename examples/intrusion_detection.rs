//! The paper's future work, implemented: a whitelist IDS correlating cyber
//! (Markov transitions, command alphabets) and physical (value envelopes,
//! breaker/power consistency) measurements — catching an Industroyer-style
//! attack that a purely application-level view would miss.
//!
//! ```sh
//! cargo run --release --example intrusion_detection
//! ```

use uncharted::analysis::ids::{AlertKind, Severity, Whitelist};
use uncharted::analysis::report::{ip, Table};
use uncharted::scadasim::attacker::AttackSpec;
use uncharted::{ExecPolicy, Pipeline, Scenario, Simulation, Year};

fn main() {
    // Day 1: a clean capture. Learn the whitelist from it.
    println!("day 1: capturing clean traffic and learning the whitelist...");
    let clean = Pipeline::builder()
        .exec(ExecPolicy::Sequential)
        .build(&Simulation::new(Scenario::small(Year::Y1, 42, 240.0)).run());
    let whitelist = Whitelist::learn(&clean.dataset);
    println!(
        "  learned {} device pairs, {} hosts\n",
        whitelist.pair_count(),
        clean.dataset.server_ips().len() + clean.dataset.outstation_ips().len(),
    );

    // Day 2: same network, but an Industroyer-style intruder connects to
    // three generator RTUs, interrogates them and operates breakers.
    println!(
        "day 2: capturing... (an attacker is active from {})",
        ip(AttackSpec::attacker_ip())
    );
    let attacked = Pipeline::builder()
        .exec(ExecPolicy::Sequential)
        .build(&Simulation::new(Scenario::small(Year::Y1, 42, 240.0).with_attack(0.5, 3)).run());

    let alerts = whitelist.inspect(&attacked.dataset);
    let mut t = Table::new(["Severity", "Alert"]);
    for a in alerts.iter().take(14) {
        let text = match &a.kind {
            AlertKind::UnknownHost { ip: h } => {
                format!("unknown host {} on the SCADA network", ip(*h))
            }
            AlertKind::UnknownPair {
                server_ip,
                outstation_ip,
            } => {
                format!(
                    "never-seen connection {} -> {}",
                    ip(*server_ip),
                    ip(*outstation_ip)
                )
            }
            AlertKind::NovelToken {
                server_ip,
                outstation_ip,
                token,
            } => {
                format!(
                    "first-ever {token} on {} -> {}",
                    ip(*server_ip),
                    ip(*outstation_ip)
                )
            }
            AlertKind::NovelTransition {
                server_ip,
                outstation_ip,
                from,
                to,
            } => {
                format!(
                    "novel transition {from}->{to} on {} -> {}",
                    ip(*server_ip),
                    ip(*outstation_ip)
                )
            }
            AlertKind::UnexpectedCommand {
                server_ip,
                outstation_ip,
                type_id,
            } => {
                format!(
                    "unexpected command I{type_id} from {} to {}",
                    ip(*server_ip),
                    ip(*outstation_ip)
                )
            }
            AlertKind::ValueOutOfRange {
                station_ip,
                ioa,
                value,
                lo,
                hi,
            } => {
                format!(
                    "{} ioa {ioa}: value {value:.1} outside [{lo:.1}, {hi:.1}]",
                    ip(*station_ip)
                )
            }
            AlertKind::PhysicsViolation { station_ip, detail } => {
                format!("{}: {detail}", ip(*station_ip))
            }
        };
        t.row([format!("{:?}", a.severity), text]);
    }
    println!(
        "\n{} alerts ({} high severity):",
        alerts.len(),
        alerts
            .iter()
            .filter(|a| a.severity == Severity::High)
            .count()
    );
    println!("{}", t.render());

    // Control: the same whitelist over another clean day stays quiet.
    let other_day = Pipeline::builder()
        .exec(ExecPolicy::Sequential)
        .build(&Simulation::new(Scenario::small(Year::Y1, 77, 240.0)).run());
    let control = whitelist.inspect(&other_day.dataset);
    println!(
        "control (clean day, different seed): {} alerts, {} high severity",
        control.len(),
        control
            .iter()
            .filter(|a| a.severity == Severity::High)
            .count()
    );
}
