//! The §6.1 story: outstations upgraded from serial IEC 101 that still
//! speak with legacy field widths. A strict parser flags 100 % of their
//! data frames; the dialect detector recovers them — and this example shows
//! the octet-level difference the paper's Fig. 7 illustrates.
//!
//! ```sh
//! cargo run --release --example legacy_dialects
//! ```

use uncharted::analysis::report::{ip, Table};
use uncharted::iec104::apdu::Apdu;
use uncharted::iec104::asdu::{Asdu, InfoObject, IoValue};
use uncharted::iec104::cot::{Cause, Cot};
use uncharted::iec104::dialect::Dialect;
use uncharted::iec104::elements::Qds;
use uncharted::iec104::parser::{StrictParser, TolerantParser};
use uncharted::iec104::types::TypeId;
use uncharted::{ExecPolicy, Pipeline, Scenario, Simulation, Year};

fn hexdump(bytes: &[u8]) -> String {
    bytes
        .iter()
        .map(|b| format!("{b:02x}"))
        .collect::<Vec<_>>()
        .join(" ")
}

fn main() {
    // --- Fig. 7: the same ASDU under three dialects -------------------
    let asdu =
        Asdu::new(TypeId::M_ME_NC_1, Cot::new(Cause::Spontaneous), 7).with_object(InfoObject::new(
            0x0301,
            IoValue::FloatMeasurement {
                value: 49.98,
                qds: Qds::GOOD,
            },
        ));
    println!("one 'measured value, short float' APDU, three wire dialects:\n");
    for (label, dialect) in [
        ("correct IEC 104 (Fig. 7b)", Dialect::STANDARD),
        ("1-octet COT, as O53/O58/O28 (Fig. 7a)", Dialect::LEGACY_COT),
        ("2-octet IOA, as O37 (Fig. 7c)", Dialect::LEGACY_IOA),
    ] {
        let bytes = Apdu::i_frame(0, 0, asdu.clone()).encode(dialect).unwrap();
        println!("  {label:<40} {}", hexdump(&bytes));
    }

    // --- A strict parser vs the tolerant parser on a legacy stream ----
    let mut stream = Vec::new();
    for i in 0..12u16 {
        let a = Asdu::new(TypeId::M_ME_NC_1, Cot::new(Cause::Spontaneous), 28).with_object(
            InfoObject::new(
                700 + (i as u32 % 4),
                IoValue::FloatMeasurement {
                    value: 131.0 + i as f32 * 0.01,
                    qds: Qds::GOOD,
                },
            ),
        );
        stream.extend(Apdu::i_frame(i, 0, a).encode(Dialect::LEGACY_COT).unwrap());
    }
    let mut strict = StrictParser::new();
    strict.feed(&stream);
    let mut tolerant = TolerantParser::new();
    tolerant.feed(&stream);
    tolerant.flush();
    println!(
        "\nlegacy stream of 12 I-frames: strict parser flags {} (100%), \
         tolerant parser flags {} and detects dialect '{}'",
        strict.stats().malformed,
        tolerant.stats().malformed,
        tolerant.detected().unwrap().label()
    );

    // --- The same finding at network scale ----------------------------
    println!("\nrunning the compliance census over a simulated Y1 capture...");
    let set = Simulation::new(Scenario::small(Year::Y1, 7, 120.0)).run();
    let p = Pipeline::builder().exec(ExecPolicy::Sequential).build(&set);
    let mut t = Table::new([
        "Outstation",
        "I-frames",
        "Strict malformed",
        "Tolerant malformed",
        "Dialect",
    ]);
    let mut rows: Vec<_> = p.dataset.compliance.values().collect();
    rows.sort_by(|a, b| {
        b.strict_malformed_fraction()
            .partial_cmp(&a.strict_malformed_fraction())
            .unwrap()
    });
    for entry in rows.iter().take(6) {
        t.row([
            ip(entry.outstation_ip),
            entry.i_frames.to_string(),
            format!("{:.0}%", entry.strict_malformed_fraction() * 100.0),
            entry.tolerant_malformed.to_string(),
            entry.dialect.label(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "(10.1.14.37 is the paper's O37; 10.1.9.28 is O28 — exactly the \
         outstations §6.1 found 100% malformed)"
    );
}
