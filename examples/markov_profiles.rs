//! The §6.3.1 Markov profiling story: tokenise every device pair's APDU
//! stream, build the chains of Figs. 12/14/15, the chain-size census of
//! Fig. 13, and the Table 6 / Fig. 17 taxonomy.
//!
//! ```sh
//! cargo run --release --example markov_profiles
//! ```

use uncharted::analysis::markov::{self, Fig13Cluster, TokenChain};
use uncharted::analysis::report::{ascii_scatter, ip, Table};
use uncharted::{ExecPolicy, Pipeline, Scenario, Simulation, Year};

fn print_chain(title: &str, chain: &TokenChain) {
    println!("{title}");
    for (a, b, p) in chain.transitions() {
        println!("    {a:>5} -> {b:<5}  p={p:.3}");
    }
}

fn main() {
    let set = Simulation::new(Scenario::small(Year::Y1, 42, 300.0)).run();
    let p = Pipeline::builder().exec(ExecPolicy::Sequential).build(&set);
    let census = p.chain_census();

    // --- Fig. 12: the two simplest expected patterns -------------------
    // A primary connection: I-frames acknowledged by S-frames.
    let primary = p
        .dataset
        .timelines
        .iter()
        .filter(|tl| tl.tokens().iter().any(|t| t.is_i()))
        .max_by_key(|tl| tl.events.len())
        .expect("a primary pair");
    let chain = TokenChain::from_tokens(&primary.tokens());
    print_chain(
        &format!(
            "busiest primary connection {} <-> {} (Fig. 12 left has the idealised version):",
            ip(primary.server_ip),
            ip(primary.outstation_ip)
        ),
        &TokenChain::from_tokens(
            &primary
                .tokens()
                .into_iter()
                .filter(|t| t.is_i() || matches!(t, uncharted::iec104::tokens::Token::S))
                .take(200)
                .collect::<Vec<_>>(),
        ),
    );
    drop(chain);

    // A healthy secondary: U16/U32 forever.
    let secondary = census
        .rows
        .iter()
        .find(|r| !r.has_i && r.answers_testfr)
        .expect("a healthy secondary");
    let tl = p
        .dataset
        .timeline(secondary.server_ip, secondary.outstation_ip)
        .unwrap();
    print_chain(
        &format!(
            "\nhealthy secondary {} <-> {} (Fig. 12 right):",
            ip(secondary.server_ip),
            ip(secondary.outstation_ip)
        ),
        &TokenChain::from_tokens(&tl.tokens()),
    );

    // The abnormal (1,1) chain: U16 with no U32 (Fig. 14).
    if let Some(dead) = census
        .rows
        .iter()
        .find(|r| census.cluster(r) == Fig13Cluster::Point11)
    {
        let tl = p
            .dataset
            .timeline(dead.server_ip, dead.outstation_ip)
            .unwrap();
        print_chain(
            &format!(
                "\ndead backup {} <-> {} (Fig. 14 — keep-alives never answered):",
                ip(dead.server_ip),
                ip(dead.outstation_ip)
            ),
            &TokenChain::from_tokens(&tl.tokens()),
        );
    }

    // --- Fig. 13: chain sizes, three clusters ---------------------------
    let points: Vec<(f64, f64, char)> = census
        .rows
        .iter()
        .map(|r| {
            let marker = match census.cluster(r) {
                Fig13Cluster::Point11 => 'x',
                Fig13Cluster::Square => 'o',
                Fig13Cluster::Ellipse => 'E',
            };
            (r.nodes as f64, r.edges as f64, marker)
        })
        .collect();
    println!(
        "\nFig. 13 — Markov chain sizes (x = dead backups at (1,1), o = ordinary, E = with I100):"
    );
    print!("{}", ascii_scatter(&points, 60, 14));
    println!(
        "clusters: point(1,1)={}, square={}, ellipse={}",
        census.in_cluster(Fig13Cluster::Point11).len(),
        census.in_cluster(Fig13Cluster::Square).len(),
        census.in_cluster(Fig13Cluster::Ellipse).len()
    );

    // --- Table 6 / Fig. 17: the taxonomy --------------------------------
    let classes = p.classify_outstations();
    let mut t = Table::new(["Type", "Description", "Count", "Share"]);
    for (class, n, frac) in markov::class_distribution(&classes) {
        t.row([
            class.number().to_string(),
            format!("{class:?}"),
            n.to_string(),
            format!("{:.1}%", frac * 100.0),
        ]);
    }
    println!("\noutstation taxonomy (Table 6 / Fig. 17):\n{}", t.render());
}
