//! Quickstart: simulate a small bulk-power SCADA capture, write it to a
//! pcap you can open in Wireshark, and run the paper's measurement pipeline
//! over it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use uncharted::analysis::report::{ip, pct, Table};
use uncharted::{ExecPolicy, Pipeline, Scenario, Simulation, Year};

fn main() {
    // 1. Simulate: the Fig. 6 network, Year-1 topology, one 3-minute window.
    //    Everything is seeded — rerunning gives byte-identical captures.
    let scenario = Scenario::small(Year::Y1, 42, 180.0);
    let captures = Simulation::new(scenario).run();
    let capture = &captures.captures[0];
    println!(
        "simulated {} packets / {} bytes of IEC 104 traffic",
        capture.len(),
        capture.total_bytes()
    );

    // 2. Persist as a classic libpcap file (open it in Wireshark!).
    let path = std::env::temp_dir().join("uncharted_quickstart.pcap");
    let mut buf = Vec::new();
    capture.write_pcap(&mut buf).expect("encode pcap");
    std::fs::write(&path, &buf).expect("write pcap");
    println!("wrote {}", path.display());

    // 3. Analyse: flows, compliance, typeID census.
    let pipeline = Pipeline::builder()
        .exec(ExecPolicy::Sequential)
        .build_capture(capture);

    let flows = pipeline.flow_stats();
    let mut t = Table::new(["Flow class", "Count", "Share"]);
    t.row([
        "Short-lived (<1s)".to_string(),
        flows.short_sub_second.to_string(),
        pct(flows.short_sub_second as f64 / flows.total() as f64),
    ]);
    t.row([
        "Short-lived (>=1s)".to_string(),
        flows.short_longer.to_string(),
        pct(flows.short_longer as f64 / flows.total() as f64),
    ]);
    t.row([
        "Long-lived".to_string(),
        flows.long_lived.to_string(),
        pct(flows.long_lived as f64 / flows.total() as f64),
    ]);
    println!("\nTCP flows (paper Table 3 shape):\n{}", t.render());

    let census = pipeline.type_census();
    let mut t = Table::new(["ASDU TypeID", "Count", "Share"]);
    for (code, n, share) in census.rows().into_iter().take(8) {
        t.row([format!("I{code}"), n.to_string(), format!("{share:.3}%")]);
    }
    println!("ASDU typeID census (paper Table 7 shape):\n{}", t.render());

    let malformed = pipeline.dataset.fully_malformed_outstations();
    println!("outstations a strict (Wireshark-style) parser rejects entirely:");
    for addr in malformed {
        let entry = &pipeline.dataset.compliance[&addr];
        println!(
            "  {} -> detected dialect {} ({} I-frames recovered by the tolerant parser)",
            ip(addr),
            entry.dialect.label(),
            entry.i_frames
        );
    }
}
