//! Hypothesis 1 — year-over-year change (§6, Table 2, Fig. 6): run both
//! capture years and diff what the tap sees.
//!
//! ```sh
//! cargo run --release --example year_comparison
//! ```

use std::collections::BTreeSet;
use uncharted::analysis::report::{ip, Table};
use uncharted::scadasim::topology::Topology;
use uncharted::{run_study, Pipeline};

fn outstation_label(topology: &Topology, addr: u32) -> String {
    topology
        .outstations
        .iter()
        .find(|o| o.ip() == addr)
        .map(|o| format!("{} (S{})", o.label(), o.substation))
        .unwrap_or_else(|| ip(addr))
}

fn main() {
    println!("simulating both capture campaigns (Y1: 5 windows, Y2: 3 windows)...");
    let (y1, y2): (Pipeline, Pipeline) = run_study(42, 60.0);
    let topology = Topology::paper_network();

    let ips_y1 = y1.dataset.outstation_ips();
    let ips_y2 = y2.dataset.outstation_ips();
    let removed: BTreeSet<_> = ips_y1.difference(&ips_y2).collect();
    let added: BTreeSet<_> = ips_y2.difference(&ips_y1).collect();

    println!(
        "\nY1: {} outstations on the wire; Y2: {} outstations",
        ips_y1.len(),
        ips_y2.len()
    );
    let mut t = Table::new(["Outstation", "Change"]);
    for &a in &removed {
        t.row([outstation_label(&topology, *a), "removed in Y2".to_string()]);
    }
    for &a in &added {
        t.row([outstation_label(&topology, *a), "added in Y2".to_string()]);
    }
    println!("{}", t.render());

    println!("operator's explanations (paper Table 2):");
    let mut t = Table::new(["Outstation", "Added/Removed", "Description"]);
    for (who, what, why) in Topology::table2() {
        t.row([who, what, why]);
    }
    println!("{}", t.render());

    // Flow statistics year over year (Table 3).
    let s1 = y1.flow_stats();
    let s2 = y2.flow_stats();
    let mut t = Table::new(["Year", "Short-lived", "<1s share", "Long-lived"]);
    for (label, s) in [("Y1", s1), ("Y2", s2)] {
        t.row([
            label.to_string(),
            s.short_lived().to_string(),
            format!("{:.1}%", s.sub_second_fraction() * 100.0),
            s.long_lived.to_string(),
        ]);
    }
    println!("flow lifetimes by year (Table 3):\n{}", t.render());

    // What stayed the same: servers, and the dominant traffic mix.
    assert_eq!(y1.dataset.server_ips(), y2.dataset.server_ips());
    println!("server configuration is identical across years (C1-C4), as in the paper.");
    let c1 = y1.type_census();
    let c2 = y2.type_census();
    let top = |c: &uncharted::analysis::dpi::TypeCensus| {
        c.rows()
            .into_iter()
            .take(2)
            .map(|(t, _, p)| format!("I{t} {p:.1}%"))
            .collect::<Vec<_>>()
    };
    println!("dominant types Y1: {:?} / Y2: {:?}", top(&c1), top(&c2));
}
