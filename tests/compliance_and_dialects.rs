//! §6.1: the compliance census. Exactly the legacy-dialect outstations the
//! paper names must be 100 % malformed under strict parsing and fully
//! recovered by the tolerant parser — in the right capture year.

use uncharted::iec104::dialect::Dialect;
use uncharted::nettap::ipv4::addr;
use uncharted::{ExecPolicy, Pipeline, Scenario, Simulation, Year};

fn o(ip_sub: u8, ip_id: u8) -> u32 {
    addr(10, 1, ip_sub, ip_id)
}

#[test]
fn y1_flags_o37_and_o28_only() {
    let set = Simulation::new(Scenario::small(Year::Y1, 21, 150.0)).run();
    let p = Pipeline::builder().exec(ExecPolicy::Sequential).build(&set);
    let malformed = p.dataset.fully_malformed_outstations();
    let o37 = o(14, 37);
    let o28 = o(9, 28);
    assert!(malformed.contains(&o37), "O37 (2-octet IOA) flagged");
    assert!(malformed.contains(&o28), "O28 (1-octet COT) flagged");
    // No compliant outstation is flagged.
    for ip in &malformed {
        assert!(
            [o37, o28].contains(ip),
            "unexpectedly malformed: {}",
            uncharted::nettap::ipv4::fmt_addr(*ip)
        );
    }
    // Dialect identification matches the paper's diagnosis (Fig. 7).
    assert_eq!(p.dataset.dialects[&o37], Dialect::LEGACY_IOA);
    assert_eq!(p.dataset.dialects[&o28], Dialect::LEGACY_COT);
    // The tolerant parser recovers every frame.
    for ip in [o37, o28] {
        let entry = &p.dataset.compliance[&ip];
        assert_eq!(entry.strict_malformed_fraction(), 1.0);
        assert_eq!(entry.tolerant_malformed, 0, "tolerant parser recovers");
        assert!(entry.i_frames > 10, "enough evidence: {}", entry.i_frames);
    }
}

#[test]
fn y2_flags_o37_o53_o58() {
    let set = Simulation::new(Scenario::small(Year::Y2, 22, 150.0)).run();
    let p = Pipeline::builder().exec(ExecPolicy::Sequential).build(&set);
    let malformed = p.dataset.fully_malformed_outstations();
    // O28 is gone in Y2 (Table 2); O53 and O58 appear with 1-octet COT.
    assert!(!malformed.contains(&o(9, 28)), "O28 removed in Y2");
    assert!(malformed.contains(&o(14, 37)), "O37 persists");
    assert!(malformed.contains(&o(27, 53)), "O53 (new substation)");
    assert!(malformed.contains(&o(10, 58)), "O58 (backup RTU)");
    assert_eq!(p.dataset.dialects[&o(27, 53)], Dialect::LEGACY_COT);
    assert_eq!(p.dataset.dialects[&o(10, 58)], Dialect::LEGACY_COT);
}

#[test]
fn compliant_outstations_parse_clean_under_strict() {
    let set = Simulation::new(Scenario::small(Year::Y1, 23, 100.0)).run();
    let p = Pipeline::builder().exec(ExecPolicy::Sequential).build(&set);
    // O3 and O10 are ordinary standard-dialect outstations.
    for ip in [o(3, 3), o(10, 10)] {
        let entry = &p.dataset.compliance[&ip];
        assert!(entry.i_frames > 10);
        assert_eq!(entry.strict_malformed, 0, "standard RTU is compliant");
        assert!(p.dataset.dialects[&ip].is_standard());
    }
}

#[test]
fn malformed_values_look_random_under_wrong_dialect() {
    // The paper's symptom: "the measurements in I-Format APDUs appeared
    // completely random". Decode one legacy outstation's frames under the
    // *standard* dialect and check the detector's plausibility ranking
    // agrees with the chosen dialect.
    let set = Simulation::new(Scenario::small(Year::Y1, 24, 120.0)).run();
    let p = Pipeline::builder().exec(ExecPolicy::Sequential).build(&set);
    let entry = &p.dataset.compliance[&o(14, 37)];
    let best = &entry.scores[0];
    assert_eq!(best.dialect, Dialect::LEGACY_IOA);
    // The runner-up scores strictly lower.
    assert!(best.score > entry.scores[1].score);
}
