//! The paper's future-work extension, exercised end to end: learn a
//! cyber+physical whitelist from a clean capture, then detect an
//! Industroyer-style intrusion injected into the same network.

use uncharted::analysis::ids::{AlertKind, Severity, Whitelist};
use uncharted::scadasim::attacker::AttackSpec;
use uncharted::{ExecPolicy, Pipeline, Scenario, Simulation, Year};

fn clean() -> Pipeline {
    Pipeline::builder()
        .exec(ExecPolicy::Sequential)
        .build(&Simulation::new(Scenario::small(Year::Y1, 42, 240.0)).run())
}

fn attacked() -> Pipeline {
    let scenario = Scenario::small(Year::Y1, 42, 240.0).with_attack(0.5, 3);
    Pipeline::builder()
        .exec(ExecPolicy::Sequential)
        .build(&Simulation::new(scenario).run())
}

#[test]
fn attack_changes_the_capture() {
    let a = clean();
    let b = attacked();
    // The attacker's host appears on the wire.
    let evil = AttackSpec::attacker_ip();
    assert!(!a.dataset.server_ips().contains(&evil));
    assert!(b.dataset.server_ips().contains(&evil));
    // And it managed to interrogate + command (I45/I100 from its pairs).
    let evil_pairs: Vec<_> = b
        .dataset
        .timelines
        .iter()
        .filter(|tl| tl.server_ip == evil)
        .collect();
    assert!(evil_pairs.len() >= 2, "attacker reached targets");
    assert!(evil_pairs.iter().any(|tl| tl
        .tokens()
        .contains(&uncharted::iec104::tokens::Token::I(100))));
    assert!(evil_pairs.iter().any(|tl| tl
        .tokens()
        .contains(&uncharted::iec104::tokens::Token::I(45))));
}

#[test]
fn whitelist_detects_the_intrusion() {
    let wl = Whitelist::learn(&clean().dataset);
    assert!(wl.pair_count() > 40, "learned profile covers the network");
    let alerts = wl.inspect(&attacked().dataset);
    let evil = AttackSpec::attacker_ip();

    // The unknown host fires at High severity.
    assert!(
        alerts.iter().any(|a| a.severity == Severity::High
            && matches!(a.kind, AlertKind::UnknownHost { ip } if ip == evil)),
        "unknown attacker host must be flagged"
    );
    // Its connections are unknown pairs.
    assert!(alerts
        .iter()
        .any(|a| matches!(a.kind, AlertKind::UnknownPair { server_ip, .. } if server_ip == evil)));
}

#[test]
fn whitelist_is_quiet_on_clean_traffic() {
    let wl = Whitelist::learn(&clean().dataset);
    // Same network, different day (different seed): no High alerts. A few
    // Low/Medium novelties are expected — reconnects shuffle token orders.
    let other = Pipeline::builder()
        .exec(ExecPolicy::Sequential)
        .build(&Simulation::new(Scenario::small(Year::Y1, 43, 240.0)).run());
    let alerts = wl.inspect(&other.dataset);
    let high: Vec<_> = alerts
        .iter()
        .filter(|a| a.severity == Severity::High)
        .collect();
    assert!(
        high.is_empty(),
        "no high-severity alerts on clean traffic: {high:?}"
    );
}

#[test]
fn physical_impact_of_the_attack_is_visible() {
    // The attacker opens breakers on generator RTUs: the grid loses those
    // units, which shows up in the captured power series.
    let a = clean();
    let b = attacked();
    let series_max = |p: &Pipeline, station_sub: u8, station_id: u8, ioa: u32| -> Option<f64> {
        let ip = uncharted::nettap::ipv4::addr(10, 1, station_sub, station_id);
        p.physical_series()
            .into_iter()
            .find(|s| s.station_ip == ip && s.ioa == ioa && !s.from_server)
            .map(|s| {
                // Maximum power in the tail (after the attack at 50 %).
                s.samples
                    .iter()
                    .filter(|(t, _)| *t > 240.0)
                    .map(|(_, v)| *v)
                    .fold(0.0, f64::max)
            })
    };
    // O1 (S1) is a regulation generator RTU — one of the attack targets.
    let before = series_max(&a, 1, 1, 705);
    let after = series_max(&b, 1, 1, 705);
    if let (Some(before), Some(after)) = (before, after) {
        assert!(
            after < before * 0.6,
            "generator output collapses after the breaker attack: {before} -> {after}"
        );
    } else {
        panic!("power series missing: {before:?} {after:?}");
    }
}

#[test]
fn attack_works_against_year_two_topology() {
    // The attacker is topology-agnostic: it also lands in Y2 (where O55/S26
    // joins the regulation fleet).
    let scenario = Scenario::small(Year::Y2, 91, 200.0).with_attack(0.4, 2);
    let p = Pipeline::builder()
        .exec(ExecPolicy::Sequential)
        .build(&Simulation::new(scenario).run());
    let evil = AttackSpec::attacker_ip();
    assert!(p.dataset.server_ips().contains(&evil));
    let wl = Whitelist::learn(
        &Pipeline::builder()
            .exec(ExecPolicy::Sequential)
            .build(&Simulation::new(Scenario::small(Year::Y2, 91, 200.0)).run())
            .dataset,
    );
    let alerts = wl.inspect(&p.dataset);
    assert!(alerts
        .iter()
        .any(|a| matches!(a.kind, AlertKind::UnknownHost { ip } if ip == evil)));
}

#[test]
fn attack_is_visible_in_the_markov_census() {
    // The attacker's pairs land in the Fig. 13 "ellipse": they carry I100.
    let scenario = Scenario::small(Year::Y1, 42, 240.0).with_attack(0.5, 3);
    let p = Pipeline::builder()
        .exec(ExecPolicy::Sequential)
        .build(&Simulation::new(scenario).run());
    let census = p.chain_census();
    let evil = AttackSpec::attacker_ip();
    let evil_rows: Vec<_> = census.rows.iter().filter(|r| r.server_ip == evil).collect();
    assert!(!evil_rows.is_empty());
    assert!(
        evil_rows.iter().any(|r| r.has_i100),
        "recon interrogation visible"
    );
}
