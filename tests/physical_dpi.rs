//! Hypothesis 5 (§6.4): a network observer can recover physical behaviour
//! from the tap — the generator-online signature (Figs. 20–21), the
//! unmet-load event (Figs. 18–19) and the semantic typeID mapping (Table 8).

use uncharted::analysis::dpi::{self, PhysicalKind, SignatureMachine};
use uncharted::nettap::ipv4::addr;
use uncharted::{ExecPolicy, Pipeline, Scenario, Simulation, Year};

/// O40 observes the S16 generator, which the scenario scripts offline, then
/// through synchronisation, breaker close and power delivery.
const O40_SUB: u8 = 16;
const O40_ID: u8 = 40;

fn pipeline() -> Pipeline {
    let set = Simulation::new(Scenario::small(Year::Y1, 42, 300.0)).run();
    Pipeline::builder().exec(ExecPolicy::Sequential).build(&set)
}

#[test]
fn generator_online_signature_recovered_from_the_tap() {
    let p = pipeline();
    let o40 = addr(10, 1, O40_SUB, O40_ID);
    let series = p.physical_series();
    let find = |ioa: u32| {
        series
            .iter()
            .find(|s| s.station_ip == o40 && s.ioa == ioa && !s.from_server)
            .unwrap_or_else(|| panic!("missing series ioa {ioa}"))
    };
    // O40's periodic points: IOA 702 = generator bus voltage, 705 = active
    // power; IOA 800 = breaker double point (reports on change only).
    let voltage = find(702);
    let power = find(705);
    let breaker = find(800);

    // The voltage series shows the 0 → nominal ramp.
    let v_min = voltage
        .samples
        .iter()
        .map(|(_, v)| *v)
        .fold(f64::MAX, f64::min);
    let v_max = voltage
        .samples
        .iter()
        .map(|(_, v)| *v)
        .fold(f64::MIN, f64::max);
    assert!(v_min < 5.0, "dark bus observed: {v_min}");
    assert!(v_max > 110.0, "nominal reached: {v_max}");

    // The breaker closes (0/1 -> 2) during the capture.
    assert!(breaker.samples.iter().any(|(_, v)| *v == 2.0));

    // Power flows only after the close.
    let close_t = breaker
        .samples
        .iter()
        .find(|(_, v)| *v == 2.0)
        .map(|(t, _)| *t)
        .unwrap();
    let p_before = power
        .samples
        .iter()
        .filter(|(t, _)| *t < close_t - 5.0)
        .map(|(_, v)| v.abs())
        .fold(0.0, f64::max);
    let p_after = power
        .samples
        .iter()
        .filter(|(t, _)| *t > close_t + 20.0)
        .map(|(_, v)| *v)
        .fold(0.0, f64::max);
    assert!(p_before < 5.0, "no power before close: {p_before}");
    assert!(p_after > 20.0, "power delivered after close: {p_after}");

    // The Fig. 21 state machine accepts the aligned sequence.
    let rows = dpi::align_series_defaults(&[voltage, breaker, power], 2.0, &[0.0, 1.0, 0.0]);
    let samples: Vec<(f64, u8, f64)> = rows.iter().map(|(_, v)| (v[0], v[1] as u8, v[2])).collect();
    let machine = SignatureMachine::new(130.0);
    assert!(machine.accepts(&samples), "signature must accept");

    // And it rejects the same data shuffled (time-reversed).
    let mut reversed = samples;
    reversed.reverse();
    assert!(
        !SignatureMachine::new(130.0).accepts(&reversed),
        "signature must reject reversed data"
    );
}

#[test]
fn unmet_load_event_is_flagged_by_the_variance_screen() {
    let p = pipeline();
    // The scripted load loss sits at 55–85 % of the window. Some series
    // must light up in the screen, and at least one flagged window must
    // overlap the event.
    let series = p.physical_series();
    let window = 20.0;
    let mut flagged_windows = Vec::new();
    for s in &series {
        if s.from_server {
            continue;
        }
        for ev in dpi::variance_events(s, window, 3.0) {
            flagged_windows.push((ev.start, ev.end));
        }
    }
    assert!(!flagged_windows.is_empty(), "events flagged");
    // Event times in this scenario: window [60, 360): load loss at 225,
    // restore at 315; generator sync from 105.
    let overlaps_event = flagged_windows
        .iter()
        .any(|&(s, e)| (e > 215.0 && s < 325.0) || (e > 95.0 && s < 200.0));
    assert!(
        overlaps_event,
        "flags overlap the scripted events: {flagged_windows:?}"
    );
}

#[test]
fn frequency_excursion_and_agc_response_visible() {
    let p = pipeline();
    let series = p.physical_series();
    // A frequency series (any station) shows the over-frequency excursion
    // after load loss (t >= 225) relative to the quiet first 100 s.
    let freq = series
        .iter()
        .filter(|s| !s.from_server && s.infer_kind() == PhysicalKind::Frequency)
        .max_by_key(|s| s.samples.len())
        .expect("a frequency series");
    let quiet_max = freq
        .samples
        .iter()
        .filter(|(t, _)| *t < 160.0)
        .map(|(_, v)| (v - 60.0).abs())
        .fold(0.0, f64::max);
    let event_max = freq
        .samples
        .iter()
        .filter(|(t, _)| (225.0..320.0).contains(t))
        .map(|(_, v)| (v - 60.0).abs())
        .fold(0.0, f64::max);
    assert!(
        event_max > quiet_max * 2.0,
        "excursion {event_max} vs quiet {quiet_max}"
    );
    // AGC set points travelled the network during the event (Fig. 19
    // bottom series): some I50 command series exists and changes.
    let agc = series
        .iter()
        .filter(|s| s.from_server && s.samples.len() >= 2)
        .max_by_key(|s| s.samples.len())
        .expect("an AGC set point series");
    let first = agc.samples.first().unwrap().1;
    assert!(agc.samples.iter().any(|(_, v)| (v - first).abs() > 1.0));
}

#[test]
fn table8_semantics_inferred() {
    let p = pipeline();
    let rows = p.table8();
    let find = |ty: u8| rows.iter().find(|r| r.type_id == ty);
    // I36 and I13 carry the analog mix (I, P, Q, U, Freq in the paper).
    for ty in [13u8, 36] {
        let row = find(ty).expect("analog row");
        assert!(row.station_count >= 10);
        assert!(row.symbols.iter().any(|s| s == "U"));
        assert!(row.symbols.iter().any(|s| s == "Freq"));
    }
    // I100 is the global interrogation.
    let i100 = find(100).expect("interrogation row");
    assert!(i100.symbols.iter().any(|s| s == "Inter(global)"));
    // I50 carries AGC set points, transmitted by few stations.
    let i50 = find(50).expect("setpoint row");
    assert!(i50.symbols.iter().any(|s| s == "AGC-SP"));
    assert!(
        i50.station_count <= 10,
        "few I50 stations: {}",
        i50.station_count
    );
    // Status types carry Status.
    if let Some(i31) = find(31) {
        assert!(i31.symbols.iter().any(|s| s == "Status"));
    }
}
