//! End-to-end: simulate a Year-1 capture and assert that the measurement
//! pipeline recovers the paper's headline qualitative findings.

use std::sync::OnceLock;
use uncharted::analysis::kmeans;
use uncharted::analysis::markov::Fig13Cluster;
use uncharted::{ExecPolicy, Pipeline, Scenario, Simulation, Year};

/// One shared 900 s Year-1 capture: long enough that even the O30 secondary
/// (430 s between keep-alives) shows its outlier inter-arrival time.
fn pipeline() -> &'static Pipeline {
    static PIPELINE: OnceLock<Pipeline> = OnceLock::new();
    PIPELINE.get_or_init(|| {
        let set = Simulation::new(Scenario::small(Year::Y1, 42, 900.0)).run();
        Pipeline::builder().exec(ExecPolicy::Sequential).build(&set)
    })
}

#[test]
fn flows_match_section_6_2() {
    let p = pipeline();
    let stats = p.flow_stats();
    // "99.8 % of TCP flows lasted less than one second" (short-lived ones).
    assert!(
        stats.sub_second_fraction() > 0.9,
        "sub-second fraction {}",
        stats.sub_second_fraction()
    );
    // Short-lived flows dominate (74.4 % in the paper's Y1).
    assert!(
        stats.short_fraction() > 0.5,
        "short fraction {}",
        stats.short_fraction()
    );
    // But long-lived (boundary-truncated) connections exist too.
    assert!(stats.long_lived > 10, "long-lived {}", stats.long_lived);
}

#[test]
fn type_census_matches_table_7_shape() {
    let p = pipeline();
    let census = p.type_census();
    let rows = census.rows();
    // I36 and I13 are the two dominant types, in that order...
    assert_eq!(rows[0].0, 36, "I36 dominates");
    assert_eq!(rows[1].0, 13, "I13 second");
    // ...and together carry the overwhelming share (97 % in the paper).
    let top2 = rows[0].2 + rows[1].2;
    assert!(top2 > 80.0, "I36+I13 share {top2}%");
    // A small set of other types appears (13 distinct in the paper).
    assert!(census.distinct() >= 6, "distinct {}", census.distinct());
    assert!(census.distinct() <= 20);
}

#[test]
fn session_clusters_have_paper_semantics() {
    let p = pipeline();
    let report = p.cluster_sessions(7);
    // The sweep is usable: SSE decreases, silhouettes are strong.
    for w in report.selection.windows(2) {
        assert!(w[1].sse <= w[0].sse + 1e-6);
    }
    assert!(report.selection.iter().any(|m| m.silhouette > 0.6));
    // At the paper's K=5 we must see the semantic cluster kinds of Fig. 11:
    // a keep-alive (U-heavy) cluster, a data (I-heavy) cluster and an
    // acknowledgement (S-heavy) cluster.
    let means = &report.cluster_means;
    assert!(means.iter().any(|m| m[4] > 0.8), "a U-dominated cluster");
    assert!(means.iter().any(|m| m[2] > 0.8), "an I-dominated cluster");
    assert!(means.iter().any(|m| m[3] > 0.8), "an S-dominated cluster");
    // PCA gives a faithful 2-D view (Fig. 10).
    assert!(report.pca_explained > 0.6, "pca {}", report.pca_explained);
    // And the cluster with the largest mean inter-arrival time contains the
    // misbehaving secondary of O30 (cluster 0 in the paper).
    let sessions = p.sessions();
    let slowest = (0..means.len())
        .max_by(|&a, &b| means[a][0].total_cmp(&means[b][0]))
        .unwrap();
    let o30 = uncharted::nettap::ipv4::addr(10, 1, 11, 30);
    let has_o30 = report
        .k5
        .members(slowest)
        .iter()
        .any(|&i| sessions[i].src == o30 || sessions[i].dst == o30);
    assert!(has_o30, "O30's 430 s secondary sits in the slow cluster");
}

#[test]
fn markov_census_matches_fig_13() {
    let p = pipeline();
    let census = p.chain_census();
    let point11 = census.in_cluster(Fig13Cluster::Point11);
    let square = census.in_cluster(Fig13Cluster::Square);
    let ellipse = census.in_cluster(Fig13Cluster::Ellipse);
    // All three clusters are populated (the paper's central Fig. 13).
    assert!(point11.len() >= 5, "point11 {}", point11.len());
    assert!(square.len() >= 20, "square {}", square.len());
    assert!(!ellipse.is_empty(), "ellipse empty");
    // Every ellipse chain carries I100; no square chain does.
    assert!(ellipse.iter().all(|c| c.has_i100));
    assert!(square.iter().all(|c| !c.has_i100));
    // Ellipse chains are richer than the (1,1) chains.
    let max_p11_edges = point11.iter().map(|c| c.edges).max().unwrap_or(0);
    let min_ellipse_edges = ellipse.iter().map(|c| c.edges).min().unwrap_or(0);
    assert!(min_ellipse_edges > max_p11_edges);
}

#[test]
fn taxonomy_covers_the_paper_types() {
    let p = pipeline();
    let classes = p.classify_outstations();
    let numbers: std::collections::BTreeSet<u8> = classes.values().map(|c| c.number()).collect();
    // Types 1, 2, 3 and 7 are structural and must appear in any Y1 run;
    // type 8 comes from the scripted switchover.
    for t in [1u8, 2, 3, 7, 8] {
        assert!(numbers.contains(&t), "type {t} missing from {numbers:?}");
    }
    // Backup RTUs (type 3) are the most common class (34.3 % in Fig. 17).
    let dist = uncharted::analysis::markov::class_distribution(&classes);
    let (top, _, frac) = dist.iter().max_by_key(|(_, n, _)| *n).unwrap();
    assert_eq!(top.number(), 3, "type 3 most common");
    assert!(*frac > 0.2, "type 3 share {frac}");
}

#[test]
fn elbow_and_silhouette_agree_on_a_small_k() {
    let p = pipeline();
    let report = p.cluster_sessions(3);
    let elbow = report.elbow_k.unwrap();
    assert!((2..=6).contains(&elbow), "elbow {elbow}");
    let best_sil = kmeans::best_by_silhouette(&report.selection).unwrap();
    assert!((2..=8).contains(&best_sil.k));
}

#[test]
fn deterministic_pipeline() {
    let a = Simulation::new(Scenario::small(Year::Y1, 9, 60.0)).run();
    let b = Simulation::new(Scenario::small(Year::Y1, 9, 60.0)).run();
    let pa = Pipeline::builder().exec(ExecPolicy::Sequential).build(&a);
    let pb = Pipeline::builder().exec(ExecPolicy::Sequential).build(&b);
    assert_eq!(pa.type_census().counts, pb.type_census().counts);
    let feats_a: uncharted::analysis::matrix::FeatureMatrix = pa
        .sessions()
        .iter()
        .map(|s| s.features().selected())
        .collect();
    let feats_b: uncharted::analysis::matrix::FeatureMatrix = pb
        .sessions()
        .iter()
        .map(|s| s.features().selected())
        .collect();
    let ka = kmeans::kmeans(&uncharted::analysis::session::standardize(&feats_a), 5, 1);
    let kb = kmeans::kmeans(&uncharted::analysis::session::standardize(&feats_b), 5, 1);
    assert_eq!(ka.assignments, kb.assignments);
}

#[test]
fn background_traffic_is_ignored_by_the_iec104_pipeline() {
    // The paper's capture carried ICCP and C37.118 alongside IEC 104 (§5).
    // The protocol pipeline must produce identical results with and without
    // that co-tenant traffic, while the TCP flow census sees it.
    let mut clean = Scenario::small(Year::Y1, 55, 90.0);
    clean.background_traffic = false;
    let mut noisy = Scenario::small(Year::Y1, 55, 90.0);
    noisy.background_traffic = true;
    let a = Pipeline::builder()
        .exec(ExecPolicy::Sequential)
        .build(&Simulation::new(clean).run());
    let b = Pipeline::builder()
        .exec(ExecPolicy::Sequential)
        .build(&Simulation::new(noisy).run());
    assert!(b.dataset.packets.len() > a.dataset.packets.len() + 100);
    // IEC 104 views identical.
    assert_eq!(a.type_census().counts, b.type_census().counts);
    assert_eq!(a.dataset.timelines.len(), b.dataset.timelines.len());
    assert_eq!(
        a.dataset.fully_malformed_outstations(),
        b.dataset.fully_malformed_outstations()
    );
    // TCP flow census gains the long-lived background connections.
    let fa = a.flow_stats();
    let fb = b.flow_stats();
    assert!(
        fb.long_lived >= fa.long_lived + 5,
        "{} vs {}",
        fb.long_lived,
        fa.long_lived
    );
    assert_eq!(fa.short_lived(), fb.short_lived());
}
