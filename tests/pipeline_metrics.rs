//! Metrics determinism and `--threads` semantics over the full pipeline.
//!
//! The observability contract is that counters, histograms, and per-stage
//! item counts describe the *input*, not the schedule: a seeded scenario
//! analysed sequentially and with four workers must produce bit-identical
//! counter fingerprints. Wall-clock timings are excluded from the
//! fingerprint — they are the only metrics allowed to vary between runs.

use uncharted::{ExecPolicy, MetricsSnapshot, Pipeline, Scenario, Simulation, Year};

/// Run every pipeline stage under the given policy and return the snapshot.
fn run_all_stages(policy: ExecPolicy) -> MetricsSnapshot {
    let set = Simulation::new(Scenario::small(Year::Y1, 77, 40.0)).run();
    let pipeline = Pipeline::builder().exec(policy).build(&set);
    let _ = pipeline.flow_stats();
    let sessions = pipeline.sessions();
    assert!(!sessions.is_empty(), "seeded scenario produced no sessions");
    let _ = pipeline.chain_census();
    let _ = pipeline.type_census();
    let _ = pipeline.physical_series();
    pipeline.metrics().snapshot()
}

#[test]
fn sequential_and_threaded_metrics_are_bit_identical() {
    let seq = run_all_stages(ExecPolicy::Sequential);
    let par = run_all_stages(ExecPolicy::Threads(4));
    assert_eq!(
        seq.counter_fingerprint(),
        par.counter_fingerprint(),
        "counter totals must not depend on the execution schedule"
    );
}

#[test]
fn required_counters_are_nonzero_after_a_run() {
    let snap = run_all_stages(ExecPolicy::Sequential);
    for name in [
        "iec104_apdus_parsed",
        "nettap_segments_reassembled",
        "nettap_overlaps_trimmed",
        "nettap_pcap_records_streamed",
        "analysis_sessions_built",
        "analysis_chains_built",
        "analysis_series_extracted",
    ] {
        assert!(snap.counter_total(name) > 0, "{name} stayed at zero");
    }
    // Per-dialect labelling: the standard dialect always parses something.
    assert!(
        snap.counter_value("iec104_apdus_parsed", &[("dialect", "std")])
            .unwrap_or(0)
            > 0
    );
    // Every instrumented stage ran exactly once and processed items.
    for stage in [
        "flows",
        "protocol",
        "sessions",
        "markov",
        "type_census",
        "series",
    ] {
        let s = snap
            .stage(stage)
            .unwrap_or_else(|| panic!("stage {stage} missing"));
        assert_eq!(s.runs, 1, "stage {stage} should run once");
        assert!(s.items > 0, "stage {stage} processed no items");
    }
}

#[test]
fn rendered_outputs_carry_pipeline_metrics() {
    let snap = run_all_stages(ExecPolicy::Sequential);
    let json = snap.to_json();
    assert!(json.contains("\"iec104_apdus_parsed\""));
    assert!(json.contains("\"nettap_segments_reassembled\""));
    let prom = snap.to_prometheus();
    assert!(prom.contains("# TYPE iec104_apdus_parsed counter"));
    assert!(prom.contains("iec104_apdus_parsed{dialect=\"std\"}"));
    assert!(prom.contains("# TYPE nettap_segment_payload_octets histogram"));
}

/// Sweep `--threads 0..=8` over the seeded scenario: every thread count
/// must produce the sequential counter fingerprint, and every instrumented
/// stage must report one shard span per resolved worker — the proof the
/// pipelined executor really ran the stage on its shard workers rather
/// than falling back to a single-threaded pass.
#[test]
fn thread_sweep_is_fingerprint_identical_with_per_shard_spans() {
    let reference = run_all_stages(ExecPolicy::Sequential).counter_fingerprint();
    for threads in 0..=8usize {
        let policy = ExecPolicy::from_threads_flag(threads);
        let workers = policy.workers();
        assert!(workers >= 1, "--threads {threads} resolved to zero workers");
        let snap = run_all_stages(policy);
        assert_eq!(
            snap.counter_fingerprint(),
            reference,
            "--threads {threads} shifted the counter fingerprint"
        );
        for stage in [
            "flows",
            "protocol",
            "sessions",
            "markov",
            "type_census",
            "series",
        ] {
            let s = snap
                .stage(stage)
                .unwrap_or_else(|| panic!("stage {stage} missing"));
            assert_eq!(
                s.shards.len(),
                workers,
                "--threads {threads}: stage {stage} should report {workers} shard span(s)"
            );
            let shard_wall: u64 = s.shards.iter().map(|&(_, ns)| ns).sum();
            assert!(
                shard_wall > 0,
                "--threads {threads}: stage {stage} recorded no shard time"
            );
        }
    }
}

/// `--threads 0` means one worker per core (`Auto`); an explicit
/// `Threads(0)` clamps to one worker instead of spawning a zero-worker
/// pool. Both floors are part of the CLI contract.
#[test]
fn thread_flag_zero_clamps_to_at_least_one_worker() {
    assert_eq!(ExecPolicy::from_threads_flag(0), ExecPolicy::Auto);
    assert!(ExecPolicy::Auto.workers() >= 1);
    assert_eq!(ExecPolicy::Threads(0).workers(), 1);
    assert!(ExecPolicy::Threads(0).is_sequential());
}

#[test]
fn threads_zero_means_one_worker_per_core() {
    // `--threads 0` maps to Auto, which always resolves to at least one
    // worker (regression: it used to spawn a zero-worker pool and hang).
    let builder = Pipeline::builder().threads(0);
    let set = Simulation::new(Scenario::small(Year::Y1, 77, 20.0)).run();
    let pipeline = builder.build(&set);
    assert_eq!(pipeline.exec.policy, ExecPolicy::Auto);
    assert!(pipeline.exec.workers() >= 1);
    assert!(!pipeline.sessions().is_empty());
}

#[test]
fn threads_one_means_sequential() {
    let builder = Pipeline::builder().threads(1);
    let set = Simulation::new(Scenario::small(Year::Y1, 77, 20.0)).run();
    let pipeline = builder.build(&set);
    assert_eq!(pipeline.exec.policy, ExecPolicy::Sequential);
    assert_eq!(pipeline.exec.workers(), 1);
    assert!(!pipeline.sessions().is_empty());
}
