//! CI smoke gate: streaming replay reproduces batch analysis on a
//! realistic seeded scenario.
//!
//! The property-based suite (`crates/analysis/tests/stream_parity.rs`)
//! proves the contract over adversarial generated captures; this test is
//! the cheap end-to-end guard over a full simulated SCADA campaign — the
//! same capture a batch `uncharted analyze` and a streaming `uncharted
//! analyze --follow` would see — checking the dialect map, compliance
//! census, sessions, chain census, and the metrics counter fingerprint are
//! bit-identical, windowing on.

use uncharted::analysis::markov::ChainCensus;
use uncharted::analysis::session;
use uncharted::analysis::stream::StreamSession;
use uncharted::nettap::pcap::ParsedPacket;
use uncharted::{Dataset, ExecContext, ExecPolicy, PipelineMetrics, Scenario, Simulation, Year};

fn scenario_packets() -> Vec<ParsedPacket> {
    let set = Simulation::new(Scenario::small(Year::Y1, 77, 40.0)).run();
    let mut packets: Vec<ParsedPacket> = Vec::new();
    for cap in &set.captures {
        packets.extend(cap.parsed());
    }
    packets.sort_by(|a, b| a.timestamp.total_cmp(&b.timestamp));
    packets
}

#[test]
fn streaming_follow_matches_batch_on_a_seeded_campaign() {
    let packets = scenario_packets();
    assert!(
        packets.len() > 1000,
        "scenario too small to be a smoke test"
    );

    // Batch reference: the stages the streaming engine replays.
    let ctx = ExecContext::new(ExecPolicy::Sequential);
    let ds = Dataset::ingest(packets.clone(), &ctx);
    let batch_sessions: Vec<_> = session::extract(&ds, &ctx)
        .iter()
        .map(|s| (s.src, s.dst, s.from_server, s.features()))
        .collect();
    let batch_chains = ChainCensus::build(&ds, &ctx).rows;
    let batch_fingerprint = ctx.metrics.snapshot().counter_fingerprint();

    // Streaming replay, windowed, no idle timeout (the parity mode).
    let metrics = PipelineMetrics::new();
    let mut stream = StreamSession::builder()
        .window(Some(30.0))
        .metrics(std::sync::Arc::clone(&metrics))
        .build();
    for chunk in packets.chunks(512) {
        stream.push_batch(chunk);
    }
    let (summary, _events) = stream.finish();
    let stream_fingerprint = metrics.snapshot().counter_fingerprint();

    assert_eq!(summary.dialects, ds.dialects, "dialect map diverged");
    assert_eq!(summary.compliance, ds.compliance, "compliance diverged");
    let stream_sessions: Vec<_> = summary
        .sessions
        .iter()
        .map(|r| (r.src_ip, r.dst_ip, r.from_server, r.features))
        .collect();
    assert_eq!(stream_sessions, batch_sessions, "sessions diverged");
    assert_eq!(summary.chains, batch_chains, "chain census diverged");
    assert_eq!(
        stream_fingerprint, batch_fingerprint,
        "counter fingerprint diverged"
    );
    assert!(!batch_sessions.is_empty(), "smoke scenario had no sessions");
    assert!(
        summary.windows_closed > 0,
        "windowing never closed a window"
    );
}
