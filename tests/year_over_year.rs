//! Hypothesis 1 (§6, Table 2): the network changes between years — specific
//! outstations appear and disappear — while the server side stays stable.

use uncharted::nettap::ipv4::addr;
use uncharted::scadasim::topology::Topology;
use uncharted::{ExecPolicy, Pipeline, Scenario, Simulation, Year};

fn o(sub: u8, id: u8) -> u32 {
    addr(10, 1, sub, id)
}

fn run(year: Year, seed: u64) -> Pipeline {
    Pipeline::builder()
        .exec(ExecPolicy::Sequential)
        .build(&Simulation::new(Scenario::small(year, seed, 120.0)).run())
}

#[test]
fn table2_additions_and_removals_visible_on_the_wire() {
    let y1 = run(Year::Y1, 31);
    let y2 = run(Year::Y2, 32);
    let ips_y1 = y1.dataset.outstation_ips();
    let ips_y2 = y2.dataset.outstation_ips();

    // Removed in Y2: O2 (unsupervised substation), O15/O20/O22/O28/O33/O38.
    for (sub, id) in [
        (2, 2),
        (6, 15),
        (10, 20),
        (10, 22),
        (9, 28),
        (12, 33),
        (15, 38),
    ] {
        assert!(ips_y1.contains(&o(sub, id)), "O{id} present in Y1");
        assert!(!ips_y2.contains(&o(sub, id)), "O{id} absent in Y2");
    }
    // Added in Y2: new substations, 101→104 upgrades, backup RTUs, O54.
    for (sub, id) in [
        (24, 50),
        (9, 51),
        (23, 52),
        (27, 53),
        (25, 54),
        (26, 55),
        (12, 56),
        (15, 57),
        (10, 58),
    ] {
        assert!(!ips_y1.contains(&o(sub, id)), "O{id} absent in Y1");
        assert!(ips_y2.contains(&o(sub, id)), "O{id} present in Y2");
    }
}

#[test]
fn server_configuration_is_stable_across_years() {
    let y1 = run(Year::Y1, 33);
    let y2 = run(Year::Y2, 34);
    assert_eq!(y1.dataset.server_ips(), y2.dataset.server_ips());
    assert_eq!(y1.dataset.server_ips().len(), 4, "C1-C4");
}

#[test]
fn about_a_quarter_of_outstations_stay_identical() {
    // Fig. 6's arrows: ~25 % of outstations keep the same IOA inventory.
    let topo = Topology::paper_network();
    let both: Vec<_> = topo
        .outstations
        .iter()
        .filter(|s| s.in_y1 && s.in_y2)
        .collect();
    let stable = both.iter().filter(|s| s.y2_point_delta == 0).count();
    let frac = stable as f64 / both.len() as f64;
    assert!((0.15..=0.40).contains(&frac), "stable fraction {frac}");
}

#[test]
fn y1_campaign_has_more_flows_than_y2() {
    // The paper's Table 3: Y1 (8 h, more misbehaving RTUs) shows several
    // times more short-lived flows than Y2 (3 h).
    let y1 = Simulation::new(Scenario::y1_scaled(35, 60.0)).run();
    let y2 = Simulation::new(Scenario::y2_scaled(36, 60.0)).run();
    let s1 = Pipeline::builder()
        .exec(ExecPolicy::Sequential)
        .build(&y1)
        .flow_stats();
    let s2 = Pipeline::builder()
        .exec(ExecPolicy::Sequential)
        .build(&y2)
        .flow_stats();
    assert!(
        s1.short_lived() > 2 * s2.short_lived(),
        "Y1 {} vs Y2 {}",
        s1.short_lived(),
        s2.short_lived()
    );
    // Both years: short-lived flows are overwhelmingly sub-second.
    assert!(s1.sub_second_fraction() > 0.9);
    assert!(s2.sub_second_fraction() > 0.85);
}

#[test]
fn y2_outstation_count_on_wire() {
    let y1 = run(Year::Y1, 37);
    let y2 = run(Year::Y2, 38);
    // 49 outstations in Y1, 51 in Y2 (some may stay silent in a very short
    // window, so allow slack below the nominal counts).
    assert!((44..=49).contains(&y1.dataset.outstation_ips().len()));
    assert!((46..=51).contains(&y2.dataset.outstation_ips().len()));
}
