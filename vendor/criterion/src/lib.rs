//! Offline stand-in for `criterion`.
//!
//! Implements the harness API surface the bench crate uses — `Criterion`,
//! `BenchmarkGroup`, `Bencher::iter`, `BenchmarkId`, `Throughput`,
//! `criterion_group!`/`criterion_main!` — with a real wall-clock
//! measurement loop (warm-up, adaptive iteration count, mean/min over a
//! configurable number of samples). It does no statistical analysis,
//! comparison against saved baselines, or HTML reporting; results are
//! printed to stdout.

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Throughput annotation: converts per-iteration time into a rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iteration processes this many logical elements.
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> BenchmarkId {
        BenchmarkId { id }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_count: usize,
}

impl Bencher {
    fn new(sample_count: usize) -> Bencher {
        Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_count,
        }
    }

    /// Measure `f`: warm up, pick an iteration count so one sample takes a
    /// few milliseconds, then record `sample_count` samples.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up: at least 3 iterations and ~30ms of wall clock.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_iters < 3 || (warm_start.elapsed() < Duration::from_millis(30) && warm_iters < 1_000_000) {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        // Target ~5ms per sample, bounded so the total run stays short.
        let target_sample = 0.005f64;
        self.iters_per_sample = ((target_sample / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        self.samples.clear();
        let budget = Duration::from_secs(3);
        let run_start = Instant::now();
        for _ in 0..self.sample_count {
            let t0 = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            self.samples.push(t0.elapsed());
            if run_start.elapsed() > budget {
                break;
            }
        }
    }

    fn mean_secs_per_iter(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let total: f64 = self.samples.iter().map(|d| d.as_secs_f64()).sum();
        total / (self.samples.len() as u64 * self.iters_per_sample) as f64
    }

    fn min_secs_per_iter(&self) -> f64 {
        self.samples
            .iter()
            .map(|d| d.as_secs_f64() / self.iters_per_sample as f64)
            .fold(f64::INFINITY, f64::min)
            .min(self.mean_secs_per_iter())
    }
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

fn report(name: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    let mean = bencher.mean_secs_per_iter();
    let min = bencher.min_secs_per_iter();
    let mut line = format!(
        "{name:<40} time: [{} .. {}]",
        format_time(min),
        format_time(mean)
    );
    if mean > 0.0 {
        match throughput {
            Some(Throughput::Elements(n)) => {
                line.push_str(&format!("  thrpt: {:.3} Kelem/s", n as f64 / mean / 1e3));
            }
            Some(Throughput::Bytes(n)) => {
                line.push_str(&format!(
                    "  thrpt: {:.3} MiB/s",
                    n as f64 / mean / (1024.0 * 1024.0)
                ));
            }
            None => {}
        }
    }
    println!("{line}");
}

/// Top-level harness state.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 20,
            throughput: None,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::new(self.default_sample_size);
        f(&mut b);
        report(&id.id, &b, None);
        self
    }
}

/// A named group of benchmarks sharing sample-size/throughput settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Annotate subsequent benchmarks with a throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(&format!("{}/{}", self.name, id.id), &b, self.throughput);
        self
    }

    /// Run a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), &b, self.throughput);
        self
    }

    /// Finish the group (parity with criterion's API; reporting is eager).
    pub fn finish(self) {}
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::new(3);
        b.iter(|| std::hint::black_box((0..100u64).sum::<u64>()));
        assert!(b.mean_secs_per_iter() > 0.0);
        assert!(!b.samples.is_empty());
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.throughput(Throughput::Elements(10));
        group.bench_function("noop", |b| b.iter(|| std::hint::black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("param", 4), &4usize, |b, &n| {
            b.iter(|| std::hint::black_box(n * 2))
        });
        group.finish();
        c.bench_function("top", |b| b.iter(|| std::hint::black_box(3)));
    }
}
