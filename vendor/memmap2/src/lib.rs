//! Offline stand-in for the `memmap2` crate.
//!
//! The build container has no network access and no crates.io cache, so the
//! workspace patches `memmap2` with this minimal implementation of exactly
//! the API surface the capture reader uses: read-only [`Mmap::map`] plus
//! `Deref<Target = [u8]>`.
//!
//! On Unix the mapping is a real `mmap(2)` (`PROT_READ`, `MAP_PRIVATE`)
//! issued through a local `extern "C"` declaration — no libc crate needed.
//! On other platforms it degrades to reading the whole file into an owned
//! buffer, which preserves the API contract (a stable `&[u8]` of the file's
//! contents) at the cost of the copy the real crate avoids.

use std::fs::File;
use std::io;
use std::ops::Deref;

/// An immutable memory-mapped view of an entire file.
///
/// # Safety contract
///
/// As with the real crate, [`Mmap::map`] is `unsafe` because the mapping's
/// contents can change underneath safe code if the underlying file is
/// modified concurrently (undefined behavior on most platforms). Callers
/// must ensure the file is not mutated while the mapping lives.
pub struct Mmap {
    inner: Inner,
}

enum Inner {
    #[cfg(unix)]
    Mapped { ptr: *const u8, len: usize },
    /// Empty files (zero-length `mmap` is `EINVAL`) and non-Unix targets.
    Owned(Vec<u8>),
}

// The mapping is read-only memory owned by the struct; nothing about it is
// thread-affine.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }
}

impl Mmap {
    /// Map `file` read-only in its entirety.
    ///
    /// # Safety
    ///
    /// The caller must ensure the file is not modified for the lifetime of
    /// the mapping (see the type-level contract).
    pub unsafe fn map(file: &File) -> io::Result<Mmap> {
        let len = file.metadata()?.len();
        if len > usize::MAX as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "file too large to map",
            ));
        }
        Self::map_impl(file, len as usize)
    }

    #[cfg(unix)]
    unsafe fn map_impl(file: &File, len: usize) -> io::Result<Mmap> {
        use std::os::unix::io::AsRawFd;
        if len == 0 {
            // mmap(2) rejects zero-length mappings; an empty slice is the
            // correct view of an empty file.
            return Ok(Mmap {
                inner: Inner::Owned(Vec::new()),
            });
        }
        let ptr = sys::mmap(
            std::ptr::null_mut(),
            len,
            sys::PROT_READ,
            sys::MAP_PRIVATE,
            file.as_raw_fd(),
            0,
        );
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(Mmap {
            inner: Inner::Mapped {
                ptr: ptr as *const u8,
                len,
            },
        })
    }

    #[cfg(not(unix))]
    unsafe fn map_impl(file: &File, len: usize) -> io::Result<Mmap> {
        use std::io::Read;
        let mut buf = Vec::with_capacity(len);
        let mut file = file;
        file.read_to_end(&mut buf)?;
        Ok(Mmap {
            inner: Inner::Owned(buf),
        })
    }
}

impl Deref for Mmap {
    type Target = [u8];

    #[inline]
    fn deref(&self) -> &[u8] {
        match &self.inner {
            #[cfg(unix)]
            Inner::Mapped { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            Inner::Owned(v) => v,
        }
    }
}

impl AsRef<[u8]> for Mmap {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Inner::Mapped { ptr, len } = self.inner {
            unsafe {
                sys::munmap(ptr as *mut std::ffi::c_void, len);
            }
        }
    }
}

impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mmap").field("len", &self.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn maps_file_contents() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("memmap2-shim-test-{}", std::process::id()));
        let payload = b"hello mapped world";
        {
            let mut f = File::create(&path).unwrap();
            f.write_all(payload).unwrap();
        }
        let file = File::open(&path).unwrap();
        let map = unsafe { Mmap::map(&file).unwrap() };
        assert_eq!(&*map, payload);
        assert_eq!(map.as_ref(), payload);
        drop(map);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("memmap2-shim-empty-{}", std::process::id()));
        File::create(&path).unwrap();
        let file = File::open(&path).unwrap();
        let map = unsafe { Mmap::map(&file).unwrap() };
        assert!(map.is_empty());
        std::fs::remove_file(&path).ok();
    }
}
