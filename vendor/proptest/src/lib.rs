//! Offline stand-in for `proptest`.
//!
//! Covers the subset of the proptest API the workspace's property tests
//! use: `Strategy` (with `prop_map`/`prop_filter`), `any::<T>()`, numeric
//! range strategies, `Just`, tuple strategies, `collection::vec`,
//! `sample::{select, Index}`, `prop_oneof!`, `ProptestConfig`, the
//! `proptest!` test-declaration macro and the `prop_assert*` macros.
//!
//! Semantics differ from real proptest in one deliberate way: failing
//! cases are *not* shrunk — the failing sampled inputs are reported via
//! the ordinary panic message. Sampling is deterministic per test (the
//! RNG is seeded from the test's module path + name), so failures
//! reproduce across runs.

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    /// Deterministic splitmix64 RNG used for all sampling.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed deterministically from a test's fully-qualified name.
        pub fn for_test(name: &str) -> TestRng {
            // FNV-1a over the name, then splitmix64 from there.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next raw 64-bit output (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: usize) -> usize {
            assert!(n > 0, "below(0)");
            (self.next_u64() % n as u64) as usize
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Per-test configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }
}

use test_runner::TestRng;

/// A source of random values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: `sample`
/// draws one concrete value.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform produced values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keep only values for which `f` returns true (re-sampling others).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            f,
            reason,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// A heap-allocated, type-erased strategy (what `prop_oneof!` arms become).
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

/// `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// `prop_filter` combinator.
pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter {:?} rejected 10000 consecutive samples", self.reason);
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// Strategy producing arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        // Bit-pattern arbitrary, like proptest's full f32 domain
        // (callers filter non-finite values when they need to).
        f32::from_bits(rng.next_u64() as u32)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}

impl<T: Arbitrary + Debug, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

macro_rules! range_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
range_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
    )*};
}
range_float_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

pub mod strategy {
    //! Support types for the strategy combinators/macros.
    pub use crate::{BoxedStrategy, Filter, Just, Map, Strategy};
    use crate::test_runner::TestRng;

    /// Uniform choice between boxed alternative strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Build from the (non-empty) list of alternatives.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.arms.len());
            self.arms[idx].sample(rng)
        }
    }

    /// Erase a strategy's concrete type (helper used by `prop_oneof!`).
    pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
        Box::new(s)
    }
}

pub mod collection {
    //! Collection strategies (`vec`).
    use crate::test_runner::TestRng;
    use crate::Strategy;
    use std::ops::{Range, RangeInclusive};

    /// Acceptable "size" arguments for [`vec`].
    pub trait SizeRange {
        /// Pick a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below(self.end - self.start)
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty size range");
            lo + rng.below(hi - lo + 1)
        }
    }

    /// Strategy for `Vec<S::Value>` with a sampled length.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// `Vec` strategy: each element drawn from `element`, length from `size`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling helpers (`select`, `Index`).
    use crate::test_runner::TestRng;
    use crate::{Arbitrary, Strategy};

    /// Strategy yielding a uniformly-chosen clone from a fixed list.
    pub struct Select<T: Clone> {
        items: Vec<T>,
    }

    /// Uniform choice from `items` (must be non-empty).
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select() from empty list");
        Select { items }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.items[rng.below(self.items.len())].clone()
        }
    }

    /// An abstract index resolvable against any non-empty collection length.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        /// Resolve against a collection of `len` elements (`len > 0`).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index(0)");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Index {
            Index(rng.next_u64())
        }
    }
}

pub mod prelude {
    //! `use proptest::prelude::*;` surface.
    pub use crate::strategy::Union;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace mirror so `prop::collection::vec` / `prop::sample::select` work.
    pub mod prop {
        pub use crate::{collection, sample};
    }
}

/// Uniform choice between alternative strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::boxed($strat)),+
        ])
    };
}

/// Assert inside a property (maps to `assert!`; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property (maps to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property (maps to `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declare property tests: each `fn name(pat in strategy, ...)` becomes a
/// `#[test]` that samples its inputs `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr); ) => {};
    (($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__cfg.cases {
                let _ = __case;
                let ($($pat,)+) = ($($crate::Strategy::sample(&($strat), &mut __rng),)+);
                $body
            }
        }
        $crate::__proptest_fns!(($cfg); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::for_test("x");
        let mut b = crate::test_runner::TestRng::for_test("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        fn ranges_in_bounds(a in 3u8..9, b in -5i32..=5, f in 0.5f64..2.0) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((-5..=5).contains(&b));
            prop_assert!((0.5..2.0).contains(&f));
        }

        fn combinators_work(
            v in prop::collection::vec(any::<u16>().prop_map(|x| x as u32), 2..5),
            pick in prop_oneof![Just(1u8), (10u8..20)],
            idx in any::<prop::sample::Index>(),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(pick == 1 || (10..20).contains(&pick));
            prop_assert!(idx.index(v.len()) < v.len());
        }
    }
}
