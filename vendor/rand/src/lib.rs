//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access and no crates.io cache, so the
//! workspace patches `rand` with this minimal, dependency-free
//! implementation of exactly the 0.9 API surface the simulator and the
//! analysis pipeline use: `StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::random::<f64>()` and `Rng::random_range(Range<usize>)`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic
//! for a given seed, which is all the repo's seeded-reproducibility
//! contracts require. It is NOT a drop-in replacement for the real crate's
//! value streams; captures generated under this stub differ from captures
//! generated under upstream `rand` (both are internally self-consistent).

/// Random number generators.
pub mod rngs {
    /// A deterministic xoshiro256++ generator standing in for `rand`'s
    /// `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seedable generators (`seed_from_u64` is the only constructor the
/// workspace uses).
pub trait SeedableRng: Sized {
    /// Derive a full generator state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

/// Types samplable from a uniform bit stream via [`Rng::random`].
pub trait Random {
    /// Draw one value.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Random for f64 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Random for u64 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Random for bool {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable via [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Multiply-shift bounded sampling; bias is negligible for
                // the small spans the workspace draws from.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "empty range");
                let span = (b as u64).wrapping_sub(a as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                a.wrapping_add(hi as $t)
            }
        }
    )*};
}
int_range!(usize, u64, u32, u16, u8, i64, i32);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + (self.end - self.start) * f64::random(rng)
    }
}

/// The user-facing generator trait (subset of `rand::Rng`).
pub trait Rng {
    /// The next 64 uniform bits.
    fn next_u64(&mut self) -> u64;

    /// Draw a uniform value of type `T`.
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Draw a uniform value from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Draw `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_float_in_range() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: f64 = r.random();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn range_sampling_in_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = r.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = r.random_range(-2.0f64..5.0);
            assert!((-2.0..5.0).contains(&f));
        }
    }
}
