//! Offline stand-in for `serde`.
//!
//! The workspace only ever *derives* `Serialize`/`Deserialize` (nothing in
//! the build path serializes through serde's data model — the JSON the
//! bench harness emits goes through the `serde_json` stub's own `ToJson`
//! trait). So the traits here are markers with blanket impls, and the
//! derives (re-exported from the stub `serde_derive`) expand to nothing.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all types.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
