//! No-op `Serialize`/`Deserialize` derives for the offline `serde` stub.
//!
//! The stub `serde` crate blanket-implements its marker traits for every
//! type, so these derives only need to exist (and accept any input) — they
//! expand to nothing.

use proc_macro::TokenStream;

/// Accepts any item; expands to nothing (the stub trait has a blanket impl).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts any item; expands to nothing (the stub trait has a blanket impl).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
