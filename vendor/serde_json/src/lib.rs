//! Offline stand-in for `serde_json`.
//!
//! Implements the subset the bench harness uses: [`Value`], [`Map`], the
//! [`json!`] macro (flat objects, array literals and expression
//! interpolation via the [`ToJson`] trait), [`to_string`] and
//! [`to_string_pretty`]. Instead of going through serde's `Serialize`
//! data model, interpolated expressions convert through [`ToJson`], which
//! is implemented for the primitive/collection types the workspace emits.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true`/`false`
    Bool(bool),
    /// Any number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (sorted by key).
    Object(Map),
}

/// A JSON number (integer-preserving).
#[derive(Debug, Clone)]
pub enum Number {
    /// Signed integer.
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Float.
    Float(f64),
}

/// Numeric equality across representations: `Int(1)`, `UInt(1)` and
/// `Float(1.0)` all compare equal, as they serialize indistinguishably.
impl PartialEq for Number {
    fn eq(&self, other: &Number) -> bool {
        use Number::*;
        match (self, other) {
            (Int(a), Int(b)) => a == b,
            (UInt(a), UInt(b)) => a == b,
            (Float(a), Float(b)) => a == b,
            (Int(a), UInt(b)) | (UInt(b), Int(a)) => u64::try_from(*a) == Ok(*b),
            (Int(a), Float(b)) | (Float(b), Int(a)) => *a as f64 == *b,
            (UInt(a), Float(b)) | (Float(b), UInt(a)) => *a as f64 == *b,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::Int(v) => write!(f, "{v}"),
            Number::UInt(v) => write!(f, "{v}"),
            Number::Float(v) => {
                if v.is_finite() {
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        write!(f, "{v:.1}")
                    } else {
                        write!(f, "{v}")
                    }
                } else {
                    // JSON has no Inf/NaN; mirror serde_json's `null`.
                    write!(f, "null")
                }
            }
        }
    }
}

/// A JSON object: string keys to values, sorted by key.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    inner: BTreeMap<String, Value>,
}

impl Map {
    /// An empty object.
    pub fn new() -> Map {
        Map::default()
    }

    /// Insert a key/value pair, returning any previous value.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        self.inner.insert(key, value)
    }

    /// Look up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.inner.get(key)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when there are no entries.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Iterate entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.inner.iter()
    }
}

impl Value {
    /// True for `Value::Object`.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// True for `Value::Array`.
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// True for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Borrow the object map, if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow the elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow the string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value as f64, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::Int(v)) => Some(*v as f64),
            Value::Number(Number::UInt(v)) => Some(*v as f64),
            Value::Number(Number::Float(v)) => Some(*v),
            _ => None,
        }
    }

    /// Numeric value as u64, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::UInt(v)) => Some(*v),
            Value::Number(Number::Int(v)) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// Numeric value as i64, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::Int(v)) => Some(*v),
            Value::Number(Number::UInt(v)) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The boolean, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Object member lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }
}

const NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    /// Object member access; yields `Null` for misses (serde_json semantics).
    fn index(&self, key: &str) -> &Value {
        match self {
            Value::Object(map) => map.get(key).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    /// Array element access; yields `Null` out of bounds (serde_json semantics).
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        matches!(self, Value::Bool(b) if b == other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

macro_rules! value_eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                match self {
                    Value::Number(Number::Int(v)) => i128::from(*v) == i128::from(*other),
                    Value::Number(Number::UInt(v)) => i128::from(*v) == i128::from(*other),
                    _ => false,
                }
            }
        }
    )*};
}
value_eq_int!(i8, i16, i32, i64, u8, u16, u32, u64);

impl PartialEq<usize> for Value {
    fn eq(&self, other: &usize) -> bool {
        *self == (*other as u64)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        matches!(self, Value::Number(Number::Float(v)) if v == other)
    }
}

/// Conversion into a [`Value`] (the stub's stand-in for `Serialize`).
pub trait ToJson {
    /// Convert a borrowed value.
    fn to_json_value(&self) -> Value;
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl ToJson for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl ToJson for Map {
    fn to_json_value(&self) -> Value {
        Value::Object(self.clone())
    }
}

impl ToJson for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl ToJson for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl ToJson for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

macro_rules! to_json_int {
    ($($t:ty => $variant:ident as $cast:ty),*) => {$(
        impl ToJson for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(Number::$variant(*self as $cast))
            }
        }
    )*};
}
to_json_int!(
    i8 => Int as i64, i16 => Int as i64, i32 => Int as i64, i64 => Int as i64,
    isize => Int as i64,
    u8 => UInt as u64, u16 => UInt as u64, u32 => UInt as u64, u64 => UInt as u64,
    usize => UInt as u64
);

impl ToJson for f64 {
    fn to_json_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl ToJson for f32 {
    fn to_json_value(&self) -> Value {
        Value::Number(Number::Float(*self as f64))
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(|v| v.to_json_value()).collect())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json_value(&self) -> Value {
        self.as_slice().to_json_value()
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json_value(&self) -> Value {
        self.as_slice().to_json_value()
    }
}

/// Build a [`Value`] from a (flat) JSON literal with expression
/// interpolation.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut m = $crate::Map::new();
        $( m.insert($key.to_string(), $crate::ToJson::to_json_value(&$val)); )*
        $crate::Value::Object(m)
    }};
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $($crate::ToJson::to_json_value(&$elem)),* ])
    };
    ($other:expr) => { $crate::ToJson::to_json_value(&$other) };
}

/// Serialization error (the stub serializer cannot actually fail).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json stub error")
    }
}

impl std::error::Error for Error {}

fn escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(v: &Value, out: &mut String, indent: usize, pretty: bool) {
    let pad = |n: usize, out: &mut String| {
        if pretty {
            out.push('\n');
            out.push_str(&"  ".repeat(n));
        }
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => escape(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(indent + 1, out);
                write_value(item, out, indent + 1, pretty);
            }
            pad(indent, out);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(indent + 1, out);
                escape(k, out);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(item, out, indent + 1, pretty);
            }
            pad(indent, out);
            out.push('}');
        }
    }
}

/// Compact serialization.
pub fn to_string(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(value, &mut out, 0, false);
    Ok(out)
}

/// Pretty (2-space indented) serialization.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(value, &mut out, 0, true);
    Ok(out)
}

/// Parse a JSON document into a [`Value`] (recursive descent; integers that
/// fit stay integers, everything else becomes a float).
pub fn from_str(text: &str) -> Result<Value, Error> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error);
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), Error> {
    if b.len() - *pos >= lit.len() && &b[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        Ok(())
    } else {
        Err(Error)
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'n') => expect(b, pos, b"null").map(|_| Value::Null),
        Some(b't') => expect(b, pos, b"true").map(|_| Value::Bool(true)),
        Some(b'f') => expect(b, pos, b"false").map(|_| Value::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Value::String),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = Map::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(Error);
                }
                *pos += 1;
                map.insert(key, parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(map));
                    }
                    _ => return Err(Error),
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        _ => Err(Error),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, Error> {
    if b.get(*pos) != Some(&b'"') {
        return Err(Error);
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        if b.len() - *pos < 5 {
                            return Err(Error);
                        }
                        let hex = std::str::from_utf8(&b[*pos + 1..*pos + 5])
                            .map_err(|_| Error)?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| Error)?;
                        // Surrogates are not paired up; the serializer never
                        // emits them.
                        out.push(char::from_u32(code).ok_or(Error)?);
                        *pos += 4;
                    }
                    _ => return Err(Error),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let start = *pos;
                let mut end = start + 1;
                while end < b.len() && (b[end] & 0xC0) == 0x80 {
                    end += 1;
                }
                out.push_str(std::str::from_utf8(&b[start..end]).map_err(|_| Error)?);
                *pos = end;
            }
            None => return Err(Error),
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut float = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| Error)?;
    if !float {
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Value::Number(Number::UInt(v)));
        }
        if let Ok(v) = text.parse::<i64>() {
            return Ok(Value::Number(Number::Int(v)));
        }
    }
    text.parse::<f64>()
        .map(|v| Value::Number(Number::Float(v)))
        .map_err(|_| Error)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_shapes() {
        let rows: Vec<Value> = vec![json!({"k": 1})];
        let v = json!({
            "int": 3usize,
            "float": 2.5,
            "s": "hi",
            "arr": ["a", "b"],
            "rows": rows,
            "none": Option::<u32>::None,
        });
        let s = to_string(&v).unwrap();
        assert!(s.contains("\"int\":3"));
        assert!(s.contains("\"float\":2.5"));
        assert!(s.contains("\"arr\":[\"a\",\"b\"]"));
        assert!(s.contains("\"none\":null"));
        assert!(s.contains("\"rows\":[{\"k\":1}]"));
    }

    #[test]
    fn pretty_round_shape() {
        let v = json!({"a": 1, "b": [true, false]});
        let s = to_string_pretty(&v).unwrap();
        assert!(s.starts_with("{\n"));
        assert!(s.contains("\"a\": 1"));
    }

    #[test]
    fn escapes_strings() {
        let v = json!({"q": "a\"b\\c\nd"});
        assert_eq!(to_string(&v).unwrap(), r#"{"q":"a\"b\\c\nd"}"#);
    }

    #[test]
    fn from_str_round_trips() {
        let rows: Vec<Value> = vec![json!({"k": 1})];
        let v = json!({
            "int": 3usize,
            "neg": -7,
            "float": 2.5,
            "s": "a\"b\\c\nd",
            "arr": ["a", "b"],
            "rows": rows,
            "none": Option::<u32>::None,
            "flag": true,
        });
        let compact = from_str(&to_string(&v).unwrap()).unwrap();
        let pretty = from_str(&to_string_pretty(&v).unwrap()).unwrap();
        assert_eq!(compact, v);
        assert_eq!(pretty, v);
    }

    #[test]
    fn from_str_rejects_garbage() {
        assert!(from_str("{\"a\": }").is_err());
        assert!(from_str("[1, 2").is_err());
        assert!(from_str("12 34").is_err());
    }
}
